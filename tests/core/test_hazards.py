"""Hazard-freedom tests: the paper's sliding window is necessary AND sufficient.

Section IV-C argues that a past window of 3 plus a future window of 2
removes all RAW hazards (RAW-1..4 of Figure 8) among in-flight mini-batches.
These tests verify both directions with the :class:`HazardMonitor`:

* sufficiency — the default windows produce zero violations on adversarial
  traces;
* necessity — shrinking either window makes the monitor catch real
  violations, i.e. the windows are not vacuous.
"""

import numpy as np
import pytest

from repro.core.pipeline import HazardError, HazardMonitor, ScratchPipePipeline
from repro.core.scratchpad import GpuScratchpad, required_slots
from repro.data.trace import make_dataset
from repro.model.config import tiny_config


def make_cfg(**overrides):
    defaults = dict(
        rows_per_table=120, batch_size=6, lookups_per_table=2, num_tables=1
    )
    defaults.update(overrides)
    return tiny_config(**defaults)


def run_pipeline(cfg, dataset, past_window, future_window, num_slots,
                 strict=False, policy="lru"):
    pads = [
        GpuScratchpad(
            num_slots=num_slots,
            num_rows=cfg.rows_per_table,
            past_window=past_window,
            policy_name=policy,
        )
        for _ in range(cfg.num_tables)
    ]
    monitor = HazardMonitor(strict=strict)
    pipeline = ScratchPipePipeline(
        config=cfg,
        scratchpads=pads,
        dataset_batches=dataset,
        future_window=future_window,
        monitor=monitor,
    )
    pipeline.run()
    return monitor


class TestSufficiency:
    @pytest.mark.parametrize("locality", ["random", "high"])
    def test_default_windows_hazard_free(self, locality):
        cfg = make_cfg()
        dataset = make_dataset(cfg, locality, seed=17, num_batches=30)
        monitor = run_pipeline(
            cfg, dataset, past_window=3, future_window=2,
            num_slots=required_slots(cfg), strict=True,
        )
        assert monitor.violations == []

    def test_tight_cache_still_hazard_free(self):
        # Even at the minimum hazard-free capacity, the windows protect
        # every in-flight slot.
        cfg = make_cfg()
        dataset = make_dataset(cfg, "medium", seed=23, num_batches=30)
        monitor = run_pipeline(
            cfg, dataset, past_window=3, future_window=2,
            num_slots=required_slots(cfg, window_batches=6), strict=True,
        )
        assert monitor.violations == []

    def test_oversized_windows_also_clean(self):
        cfg = make_cfg()
        dataset = make_dataset(cfg, "medium", seed=29, num_batches=20)
        monitor = run_pipeline(
            cfg, dataset, past_window=5, future_window=3,
            num_slots=required_slots(cfg, window_batches=10), strict=True,
        )
        assert monitor.violations == []


class TestNecessity:
    def test_no_future_window_triggers_raw4(self):
        # Without the future window, a batch can evict a row the next batch
        # needs: the next batch's [Collect] then reads the CPU table before
        # the write-back lands (RAW-4).  The cache is sized so the hold
        # window never exhausts eligibility but evictions still occur.
        cfg = make_cfg(rows_per_table=40, batch_size=3)
        dataset = make_dataset(cfg, "random", seed=3, num_batches=60)
        monitor = run_pipeline(
            cfg, dataset, past_window=3, future_window=0, num_slots=34,
        )
        assert any("RAW-4" in v for v in monitor.violations)

    def test_short_past_window_triggers_raw23(self):
        # With past window 1, a victim can be chosen while a batch two or
        # three stages ahead still has a pending [Insert]/[Train] write
        # (RAW-2/3).  Random replacement makes recent slots fair game.
        cfg = make_cfg(rows_per_table=40, batch_size=3)
        dataset = make_dataset(cfg, "random", seed=3, num_batches=60)
        monitor = run_pipeline(
            cfg, dataset, past_window=1, future_window=2, num_slots=34,
            policy="random",
        )
        assert any("RAW-2/3" in v for v in monitor.violations)

    def test_strict_monitor_raises(self):
        cfg = make_cfg(rows_per_table=40, batch_size=3)
        dataset = make_dataset(cfg, "random", seed=3, num_batches=60)
        with pytest.raises(HazardError):
            run_pipeline(
                cfg, dataset, past_window=0, future_window=0, num_slots=34,
                strict=True, policy="random",
            )


class TestMonitorMechanics:
    @staticmethod
    def _one_slot_plan():
        from repro.core.scratchpad import TablePlan

        return TablePlan(
            unique_ids=np.array([7]),
            slots=np.array([0]),
            hit_mask=np.array([False]),
            miss_ids=np.array([7]),
            fill_slots=np.array([0]),
            evicted_ids=np.array([5]),
        )

    def test_legacy_retirement_clears_pending_writes(self):
        monitor = HazardMonitor(strict=False, legacy=True)
        # After on_cycle_end past the write cycle, the pending maps drain.
        monitor.on_plan(cycle=1, table=0, plan=self._one_slot_plan())
        assert monitor._pending_slot_writes
        assert monitor._pending_writebacks
        monitor.on_cycle_end(10)
        assert not monitor._pending_slot_writes
        assert not monitor._pending_writebacks

    def test_vectorised_retirement_is_lazy(self):
        # The vectorised monitor never prunes; a write cycle in the past
        # simply stops comparing as pending, so a later plan touching the
        # same slot/row is clean.
        monitor = HazardMonitor(strict=True)
        monitor.on_plan(cycle=1, table=0, plan=self._one_slot_plan())
        monitor.on_cycle_end(10)  # no-op
        monitor.on_plan(cycle=11, table=0, plan=self._one_slot_plan())
        assert monitor.violations == []

    def test_vectorised_flags_like_legacy_on_reuse(self):
        # Re-planning the same fill slot and missed row one cycle later is
        # inside both pending windows: both implementations flag RAW-2/3
        # (slot 0 written at [Train]) and RAW-4 (row 5 written back).
        plan = self._one_slot_plan()
        seen = {}
        for legacy in (False, True):
            monitor = HazardMonitor(strict=False, legacy=legacy)
            monitor.on_plan(cycle=1, table=0, plan=plan)
            second = self._one_slot_plan()
            second = type(second)(
                unique_ids=np.array([5]),
                slots=np.array([0]),
                hit_mask=np.array([False]),
                miss_ids=np.array([5]),
                fill_slots=np.array([0]),
                evicted_ids=np.array([7]),
            )
            monitor.on_cycle_end(1)
            monitor.on_plan(cycle=2, table=0, plan=second)
            seen[legacy] = monitor.violations
        assert seen[False] == seen[True]
        assert any("RAW-2/3" in v for v in seen[False])
        assert any("RAW-4" in v for v in seen[False])

"""Edge-case tests for the pipeline executor (fill/drain, short traces,
window boundary conditions)."""

import numpy as np
import pytest

from repro.core.pipeline import HazardMonitor, ScratchPipePipeline
from repro.core.scratchpad import required_slots
from repro.data.trace import make_dataset
from repro.model.config import tiny_config
from repro.systems.scratchpipe_system import make_scratchpads


@pytest.fixture
def cfg():
    return tiny_config(rows_per_table=300, batch_size=4, lookups_per_table=2,
                       num_tables=2)


class TestShortTraces:
    @pytest.mark.parametrize("n", [1, 2, 3, 5])
    def test_trace_shorter_than_pipeline_depth(self, cfg, n):
        """Traces shorter than the 6-stage depth never reach steady state
        but must still complete every batch exactly once."""
        dataset = make_dataset(cfg, "medium", seed=1, num_batches=n)
        pipeline = ScratchPipePipeline(
            config=cfg,
            scratchpads=make_scratchpads(cfg, required_slots(cfg)),
            dataset_batches=dataset,
            monitor=HazardMonitor(strict=True),
        )
        result = pipeline.run()
        assert [s.batch_index for s in result.cache_stats] == list(range(n))

    def test_single_batch_all_miss(self, cfg):
        dataset = make_dataset(cfg, "medium", seed=1, num_batches=1)
        pipeline = ScratchPipePipeline(
            config=cfg,
            scratchpads=make_scratchpads(cfg, 64),
            dataset_batches=dataset,
        )
        result = pipeline.run()
        stats = result.cache_stats[0]
        assert stats.hits == 0
        assert stats.misses == stats.unique_ids


class TestFutureWindowBoundaries:
    def test_future_window_truncates_at_trace_end(self, cfg):
        """The last batches have no future batches to protect; the pipeline
        must not peek past the trace."""
        dataset = make_dataset(cfg, "medium", seed=2, num_batches=4)
        pipeline = ScratchPipePipeline(
            config=cfg,
            scratchpads=make_scratchpads(cfg, required_slots(cfg)),
            dataset_batches=dataset,
            future_window=3,
            monitor=HazardMonitor(strict=True),
        )
        result = pipeline.run()
        assert len(result.cache_stats) == 4

    def test_zero_future_window_runs(self, cfg):
        """future_window=0 is legal (it only weakens RAW-4 protection, which
        an ample cache may never expose)."""
        dataset = make_dataset(cfg, "medium", seed=2, num_batches=8)
        pipeline = ScratchPipePipeline(
            config=cfg,
            scratchpads=make_scratchpads(cfg, cfg.rows_per_table),
            dataset_batches=dataset,
            future_window=0,
            monitor=HazardMonitor(strict=True),
        )
        result = pipeline.run()
        # With the cache covering the whole table there are no evictions,
        # hence no RAW-4 opportunities even without the future window.
        assert all(s.writebacks == 0 for s in result.cache_stats)

    def test_large_future_window(self, cfg):
        dataset = make_dataset(cfg, "medium", seed=2, num_batches=6)
        pipeline = ScratchPipePipeline(
            config=cfg,
            scratchpads=make_scratchpads(
                cfg, required_slots(cfg, window_batches=10)
            ),
            dataset_batches=dataset,
            future_window=5,
            monitor=HazardMonitor(strict=True),
        )
        result = pipeline.run()
        assert len(result.cache_stats) == 6


class TestDeterminism:
    def test_two_identical_runs_agree(self, cfg):
        dataset = make_dataset(cfg, "high", seed=7, num_batches=10)

        def run():
            pipeline = ScratchPipePipeline(
                config=cfg,
                scratchpads=make_scratchpads(cfg, required_slots(cfg)),
                dataset_batches=dataset,
            )
            return pipeline.run()

        a, b = run(), run()
        for sa, sb in zip(a.cache_stats, b.cache_stats):
            assert sa == sb

    def test_partial_equals_prefix_of_full(self, cfg):
        dataset = make_dataset(cfg, "high", seed=7, num_batches=10)

        def run(n):
            pipeline = ScratchPipePipeline(
                config=cfg,
                scratchpads=make_scratchpads(cfg, required_slots(cfg)),
                dataset_batches=dataset,
            )
            return pipeline.run(num_batches=n)

        full = run(10)
        partial = run(6)
        for sa, sb in zip(partial.cache_stats, full.cache_stats[:6]):
            # The cache decisions of a prefix depend only on the prefix
            # (plus its bounded future window), so early batches agree.
            assert sa.batch_index == sb.batch_index
            assert sa.unique_ids == sb.unique_ids

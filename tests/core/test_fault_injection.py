"""Fault-injection tests: corrupting the runtime's invariants must surface
loudly, never as silent training corruption."""

import numpy as np
import pytest

from repro.core.hitmap import EMPTY
from repro.core.pipeline import HazardError, HazardMonitor, ScratchPipePipeline
from repro.core.scratchpad import GpuScratchpad, required_slots
from repro.data.trace import make_dataset
from repro.model.config import tiny_config
from repro.systems.scratchpipe_system import make_scratchpads


@pytest.fixture
def cfg():
    return tiny_config(rows_per_table=200, batch_size=4, lookups_per_table=2,
                       num_tables=1)


class TestCorruptedHitMap:
    def test_foreign_plan_ids_raise_on_gather(self, cfg):
        """A plan cannot serve IDs it never planned — the always-hit
        guarantee fails closed."""
        pad = GpuScratchpad(num_slots=16, num_rows=cfg.rows_per_table)
        plan = pad.plan_batch(np.array([3, 7]))
        with pytest.raises(KeyError):
            plan.slots_for(np.array([[3, 9]]))

    def test_double_assign_rejected(self, cfg):
        pad = GpuScratchpad(num_slots=16, num_rows=cfg.rows_per_table)
        pad.plan_batch(np.array([3]))
        with pytest.raises(ValueError, match="already cached"):
            pad.hit_map.assign(3, 5)


class TestCorruptedWindows:
    def test_sabotaged_hold_mask_detected(self, cfg):
        """Clearing the hold mask mid-run (simulating a runtime bug) makes
        the strict monitor raise instead of silently corrupting training."""
        dataset = make_dataset(cfg, "random", seed=3, num_batches=30)
        pads = make_scratchpads(cfg, 24, policy_name="random")
        monitor = HazardMonitor(strict=True)
        pipeline = ScratchPipePipeline(
            config=cfg,
            scratchpads=pads,
            dataset_batches=dataset,
            future_window=2,
            monitor=monitor,
        )

        original_plan = pads[0].plan_batch

        def sabotaged_plan(batch_ids, future_ids=None, **kwargs):
            # Wipe the window protection before every plan.
            pads[0].hold_mask._release_at[:] = 0
            return original_plan(batch_ids, future_ids, **kwargs)

        pads[0].plan_batch = sabotaged_plan
        with pytest.raises(HazardError):
            pipeline.run()


class TestShapeMismatches:
    def test_wrong_cpu_table_count(self, cfg):
        dataset = make_dataset(cfg, "medium", seed=1, num_batches=4)
        with pytest.raises(ValueError, match="one array per table"):
            ScratchPipePipeline(
                config=cfg,
                scratchpads=make_scratchpads(cfg, 16, with_storage=True),
                dataset_batches=dataset,
                cpu_tables=[],
            )

    def test_storage_write_shape_mismatch(self, cfg):
        pad = GpuScratchpad(
            num_slots=8, num_rows=cfg.rows_per_table,
            dim=cfg.embedding_dim, with_storage=True,
        )
        with pytest.raises(ValueError):
            pad.write_slots(
                np.array([0, 1]),
                np.zeros((2, cfg.embedding_dim + 3), dtype=np.float32),
            )


class TestCapacityFailures:
    def test_undersized_cache_fails_closed(self, cfg):
        """A cache below the window bound raises CachePressureError with
        actionable guidance rather than evicting a protected slot."""
        from repro.core.replacement import CachePressureError

        dataset = make_dataset(cfg, "random", seed=5, num_batches=20)
        pipeline = ScratchPipePipeline(
            config=cfg,
            scratchpads=make_scratchpads(cfg, 10),  # << required_slots
            dataset_batches=dataset,
        )
        with pytest.raises(CachePressureError, match="enlarge the scratchpad"):
            pipeline.run()

    def test_required_slots_is_sufficient(self, cfg):
        dataset = make_dataset(cfg, "random", seed=5, num_batches=20)
        pipeline = ScratchPipePipeline(
            config=cfg,
            scratchpads=make_scratchpads(cfg, required_slots(cfg)),
            dataset_batches=dataset,
        )
        pipeline.run()  # must not raise


class TestPressureDiagnostics:
    def test_pressure_error_names_table_and_cycle(self, cfg):
        """The satellite contract: pipeline-raised cache pressure says which
        table and plan cycle hit it, not just the slot counts."""
        from repro.core.replacement import CachePressureError

        dataset = make_dataset(cfg, "random", seed=5, num_batches=20)
        pipeline = ScratchPipePipeline(
            config=cfg,
            scratchpads=make_scratchpads(cfg, 10),
            dataset_batches=dataset,
        )
        with pytest.raises(
            CachePressureError, match=r"table 0, plan cycle \d+"
        ):
            pipeline.run()

"""Tests for the Hold mask (repro.core.holdmask)."""

import numpy as np
import pytest

from repro.core.holdmask import HoldMask


class TestConstruction:
    def test_starts_all_eligible(self):
        mask = HoldMask(num_slots=8)
        assert mask.eligible_mask().all()
        assert mask.held_count() == 0

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            HoldMask(num_slots=0)
        with pytest.raises(ValueError):
            HoldMask(num_slots=4, past_window=63)
        with pytest.raises(ValueError):
            HoldMask(num_slots=4, past_window=-1)

    def test_fresh_bit_value(self):
        assert HoldMask(num_slots=2, past_window=3).fresh_bit == 8
        assert HoldMask(num_slots=2, past_window=0).fresh_bit == 1


class TestHoldLifetime:
    def test_hold_visible_immediately(self):
        mask = HoldMask(num_slots=4, past_window=3)
        mask.hold(np.array([1, 2]))
        assert mask.is_held(np.array([1, 2])).all()
        assert not mask.is_held(np.array([0, 3])).any()

    def test_bit_survives_exactly_past_window_advances(self):
        # The paper's semantics: a hold set at batch j's Plan must remain
        # visible during the Plans of batches j+1..j+W (RAW-2 spans the
        # [Collect]-to-[Train] distance of 3).
        window = 3
        mask = HoldMask(num_slots=2, past_window=window)
        mask.hold(np.array([0]))
        for _ in range(window):
            mask.advance()
            assert mask.is_held(np.array([0]))[0]
        mask.advance()
        assert not mask.is_held(np.array([0]))[0]

    def test_zero_window_expires_on_first_advance(self):
        mask = HoldMask(num_slots=2, past_window=0)
        mask.hold(np.array([0]))
        assert mask.is_held(np.array([0]))[0]
        mask.advance()
        assert not mask.is_held(np.array([0]))[0]

    def test_rehold_refreshes_lifetime(self):
        mask = HoldMask(num_slots=1, past_window=2)
        mask.hold(np.array([0]))
        mask.advance()
        mask.hold(np.array([0]))  # re-held one batch later
        mask.advance()
        mask.advance()
        assert mask.is_held(np.array([0]))[0]
        mask.advance()
        assert not mask.is_held(np.array([0]))[0]


class TestMasks:
    def test_eligible_is_complement_of_held(self):
        mask = HoldMask(num_slots=6, past_window=2)
        mask.hold(np.array([0, 5]))
        assert np.array_equal(mask.eligible_mask(), ~mask.held_mask())
        assert mask.held_count() == 2

    def test_empty_hold_noop(self):
        mask = HoldMask(num_slots=4)
        mask.hold(np.empty(0, dtype=np.int64))
        assert mask.held_count() == 0

    def test_out_of_range_slot_rejected(self):
        mask = HoldMask(num_slots=4)
        with pytest.raises(ValueError):
            mask.hold(np.array([4]))
        with pytest.raises(ValueError):
            mask.hold(np.array([-1]))

    def test_raw_bits_is_copy(self):
        mask = HoldMask(num_slots=4)
        bits = mask.raw_bits()
        bits[0] = 255
        assert mask.held_count() == 0

    def test_overlapping_windows_accumulate(self):
        # Two batches holding the same slot: the mask stays non-zero until
        # the *latest* hold expires.
        mask = HoldMask(num_slots=1, past_window=3)
        mask.hold(np.array([0]))       # batch j
        mask.advance()
        mask.hold(np.array([0]))       # batch j+1
        for _ in range(3):
            mask.advance()
            assert mask.is_held(np.array([0]))[0]
        mask.advance()
        assert not mask.is_held(np.array([0]))[0]

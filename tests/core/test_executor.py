"""Executor-backend tests: registry contracts, serial vs overlapped
bit-identity (the PR 10 determinism contract), and planner-worker fault
injection at the ``pipeline.executor`` site — a crashed, stalled or
raising planner must surface as a named error, never a hang or a leaked
shared-memory segment."""

import numpy as np
import pytest

from repro.core.executor import (
    _liveness_timeout,
    _shard_tables,
    _worker_count,
    make_executor,
    register_executor,
    registered_executors,
)
from repro.core.pipeline import HazardError, HazardMonitor, ScratchPipePipeline
from repro.core.scratchpad import required_slots
from repro.data.trace import make_dataset
from repro.errors import (
    ExecutorConfigError,
    ExecutorUnavailableError,
    ExecutorWorkerError,
)
from repro.model.config import tiny_config
from repro.model.dlrm import DLRMModel, DenseNetwork
from repro.model.optimizer import SGD
from repro.systems.scratchpipe_system import (
    ScratchPipeTrainingRun,
    make_scratchpads,
)
from repro.testing.faults import FaultSpec, InjectedFaultError, injected_faults


@pytest.fixture
def cfg():
    return tiny_config(rows_per_table=300, batch_size=6, lookups_per_table=2,
                       num_tables=4)


@pytest.fixture
def dataset(cfg):
    return make_dataset(cfg, "medium", seed=3, num_batches=24)


def run_once(cfg, dataset, executor, *, strict=False, num_slots=None,
             num_batches=None):
    """One fresh metadata-mode run; returns (result, monitor, scratchpads)."""
    pads = make_scratchpads(cfg, num_slots or required_slots(cfg))
    monitor = HazardMonitor(strict=strict)
    pipeline = ScratchPipePipeline(
        config=cfg,
        scratchpads=pads,
        dataset_batches=dataset,
        monitor=monitor,
        executor=executor,
    )
    result = pipeline.run(num_batches=num_batches)
    return result, monitor, pads


def assert_runs_identical(cfg, serial, overlapped):
    s_result, s_monitor, s_pads = serial
    o_result, o_monitor, o_pads = overlapped
    assert o_result.cache_stats == s_result.cache_stats
    assert o_result.losses == s_result.losses
    assert o_monitor.violations == s_monitor.violations
    for table in range(cfg.num_tables):
        assert np.array_equal(
            o_pads[table].hit_map.export_state(),
            s_pads[table].hit_map.export_state(),
        )


class TestRegistry:
    def test_builtins_registered(self):
        assert {"serial", "overlapped"} <= set(registered_executors())

    def test_names_sorted(self):
        names = registered_executors()
        assert list(names) == sorted(names)

    def test_unknown_executor_rejected(self):
        with pytest.raises(ExecutorConfigError, match="unknown executor"):
            make_executor("warp-drive")

    def test_duplicate_registration_rejected(self):
        class Impostor:
            pass

        with pytest.raises(ExecutorConfigError, match="already registered"):
            register_executor("serial")(Impostor)

    def test_pipeline_validates_executor_eagerly(self, cfg, dataset):
        with pytest.raises(ExecutorConfigError, match="warp-drive"):
            ScratchPipePipeline(
                config=cfg,
                scratchpads=make_scratchpads(cfg, required_slots(cfg)),
                dataset_batches=dataset,
                executor="warp-drive",
            )


class TestConfigKnobs:
    def test_worker_count_default_clamps_to_tables(self):
        assert _worker_count(1) == 1

    def test_worker_count_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR_WORKERS", "2")
        assert _worker_count(8) == 2

    @pytest.mark.parametrize("raw", ["zero", "0", "-3"])
    def test_worker_count_env_validated(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_EXECUTOR_WORKERS", raw)
        with pytest.raises(ExecutorConfigError, match="REPRO_EXECUTOR_WORKERS"):
            _worker_count(8)

    @pytest.mark.parametrize("raw", ["soon", "0", "-1.5"])
    def test_timeout_env_validated(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_EXECUTOR_TIMEOUT_S", raw)
        with pytest.raises(
            ExecutorConfigError, match="REPRO_EXECUTOR_TIMEOUT_S"
        ):
            _liveness_timeout()

    def test_shards_contiguous_and_ordered(self):
        shards = _shard_tables(5, 3)
        assert shards == [(0, 1), (2, 3), (4,)]
        flat = [t for shard in shards for t in shard]
        assert flat == sorted(flat)

    def test_daemonic_parent_rejected(self, cfg, dataset, monkeypatch):
        class _Daemon:
            daemon = True

        monkeypatch.setattr(
            "repro.core.executor.multiprocessing.current_process",
            lambda: _Daemon(),
        )
        with pytest.raises(ExecutorUnavailableError, match="daemonic"):
            run_once(cfg, dataset, "overlapped")


class TestMetadataBitIdentity:
    @pytest.mark.parametrize("workers", ["1", "2", "3"])
    def test_stats_violations_and_hitmap_identical(
        self, cfg, dataset, monkeypatch, workers
    ):
        serial = run_once(cfg, dataset, "serial")
        monkeypatch.setenv("REPRO_EXECUTOR_WORKERS", workers)
        overlapped = run_once(cfg, dataset, "overlapped")
        assert_runs_identical(cfg, serial, overlapped)

    def test_partial_run_identical(self, cfg, dataset, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR_WORKERS", "2")
        serial = run_once(cfg, dataset, "serial", num_batches=7)
        overlapped = run_once(cfg, dataset, "overlapped", num_batches=7)
        assert_runs_identical(cfg, serial, overlapped)

    def test_streaming_yields_same_sequence(self, cfg, dataset, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR_WORKERS", "2")
        streams = []
        for executor in ("serial", "overlapped"):
            pads = make_scratchpads(cfg, required_slots(cfg))
            pipeline = ScratchPipePipeline(
                config=cfg, scratchpads=pads, dataset_batches=dataset,
                executor=executor,
            )
            streams.append(list(pipeline.stream()))
        assert streams[0] == streams[1]


class TestFunctionalBitIdentity:
    @pytest.mark.parametrize("locality", ["low", "medium"])
    def test_losses_tables_and_dense_identical(self, locality, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR_WORKERS", "2")
        cfg = tiny_config(rows_per_table=400, batch_size=8,
                          lookups_per_table=3, num_tables=2)
        dataset = make_dataset(cfg, locality, seed=13, num_batches=18,
                               with_dense=True)
        runs = {}
        for executor in ("serial", "overlapped"):
            init = DLRMModel.initialise(cfg, seed=77)
            dense = DenseNetwork.initialise(cfg, np.random.default_rng(0))
            dense.copy_parameters_from(init.dense_network)
            run = ScratchPipeTrainingRun(
                config=cfg,
                cpu_tables=[t.weights.copy() for t in init.tables],
                dense_network=dense,
                num_slots=required_slots(cfg),
                optimizer=SGD(lr=0.01),
                monitor=HazardMonitor(strict=True),
                executor=executor,
            )
            result = run.run(dataset)
            runs[executor] = (result, run.final_tables(), dense)
        s_result, s_tables, s_dense = runs["serial"]
        o_result, o_tables, o_dense = runs["overlapped"]
        assert np.allclose(o_result.losses, s_result.losses, rtol=0, atol=0)
        assert o_result.cache_stats == s_result.cache_stats
        for table in range(cfg.num_tables):
            assert np.array_equal(o_tables[table], s_tables[table])
        for s_mlp, o_mlp in (
            (s_dense.bottom_mlp, o_dense.bottom_mlp),
            (s_dense.top_mlp, o_dense.top_mlp),
        ):
            for s_layer, o_layer in zip(s_mlp.layers, o_mlp.layers):
                assert np.array_equal(s_layer.weight, o_layer.weight)
                assert np.array_equal(s_layer.bias, o_layer.bias)


def sabotaged_run(executor, *, strict):
    """A run whose table-0 hold mask is wiped before every plan, forcing
    RAW hazards; returns (run(), monitor) or raises what ``run()`` raises.
    """
    cfg = tiny_config(rows_per_table=200, batch_size=4,
                      lookups_per_table=2, num_tables=1)
    dataset = make_dataset(cfg, "random", seed=3, num_batches=30)
    pads = make_scratchpads(cfg, 24, policy_name="random")
    monitor = HazardMonitor(strict=strict)
    pipeline = ScratchPipePipeline(
        config=cfg,
        scratchpads=pads,
        dataset_batches=dataset,
        future_window=2,
        monitor=monitor,
        executor=executor,
    )
    original_plan = pads[0].plan_batch

    def sabotaged_plan(batch_ids, future_ids=None, **kwargs):
        pads[0].hold_mask._release_at[:] = 0
        return original_plan(batch_ids, future_ids, **kwargs)

    pads[0].plan_batch = sabotaged_plan
    return pipeline, monitor


class TestHazardParity:
    def test_strict_hazard_message_identical(self, monkeypatch):
        messages = {}
        for executor in ("serial", "overlapped"):
            pipeline, monitor = sabotaged_run(executor, strict=True)
            with pytest.raises(HazardError) as excinfo:
                pipeline.run()
            messages[executor] = str(excinfo.value)
            assert monitor.violations[-1] == str(excinfo.value)
        assert messages["overlapped"] == messages["serial"]

    def test_nonstrict_violation_log_identical(self, monkeypatch):
        logs = {}
        for executor in ("serial", "overlapped"):
            pipeline, monitor = sabotaged_run(executor, strict=False)
            pipeline.run()
            logs[executor] = list(monitor.violations)
        assert logs["serial"]  # the sabotage actually fired
        assert logs["overlapped"] == logs["serial"]


class TestPlannerFaults:
    """Satellite 2: kill/stall/raise a planner mid-batch.  Every leg must
    end in recovery or a named repro.errors failure — never a hang, never
    a leaked /dev/shm segment (``shm_leak_check``)."""

    @pytest.fixture
    def fault_cfg(self):
        return tiny_config(rows_per_table=300, batch_size=6,
                           lookups_per_table=2, num_tables=2)

    @pytest.fixture
    def fault_dataset(self, fault_cfg):
        return make_dataset(fault_cfg, "medium", seed=11, num_batches=16)

    def test_killed_planner_surfaces_named_error(
        self, fault_cfg, fault_dataset, tmp_path, shm_leak_check, monkeypatch
    ):
        monkeypatch.setenv("REPRO_EXECUTOR_WORKERS", "2")
        with injected_faults(
            FaultSpec(site="pipeline.executor", mode="kill", after=3),
            state_dir=str(tmp_path / "faults"),
        ):
            with pytest.raises(ExecutorWorkerError, match="died with exit"):
                run_once(fault_cfg, fault_dataset, "overlapped")

    def test_raising_planner_surfaces_injected_error(
        self, fault_cfg, fault_dataset, tmp_path, shm_leak_check, monkeypatch
    ):
        monkeypatch.setenv("REPRO_EXECUTOR_WORKERS", "2")
        with injected_faults(
            FaultSpec(site="pipeline.executor", mode="raise", after=2),
            state_dir=str(tmp_path / "faults"),
        ):
            with pytest.raises(InjectedFaultError):
                run_once(fault_cfg, fault_dataset, "overlapped")

    def test_short_stall_recovers_bit_identical(
        self, fault_cfg, fault_dataset, tmp_path, shm_leak_check, monkeypatch
    ):
        serial = run_once(fault_cfg, fault_dataset, "serial")
        monkeypatch.setenv("REPRO_EXECUTOR_WORKERS", "2")
        with injected_faults(
            FaultSpec(site="pipeline.executor", mode="stall", stall_s=0.2,
                      after=4),
            state_dir=str(tmp_path / "faults"),
        ):
            overlapped = run_once(fault_cfg, fault_dataset, "overlapped")
        assert_runs_identical(fault_cfg, serial, overlapped)

    def test_long_stall_trips_liveness_watchdog(
        self, fault_cfg, fault_dataset, tmp_path, shm_leak_check, monkeypatch
    ):
        monkeypatch.setenv("REPRO_EXECUTOR_WORKERS", "2")
        monkeypatch.setenv("REPRO_EXECUTOR_TIMEOUT_S", "0.4")
        with injected_faults(
            FaultSpec(site="pipeline.executor", mode="stall", stall_s=30.0,
                      after=3),
            state_dir=str(tmp_path / "faults"),
        ):
            with pytest.raises(ExecutorWorkerError, match="hung"):
                run_once(fault_cfg, fault_dataset, "overlapped")

    def test_fault_free_plan_leaves_serial_unaffected(
        self, fault_cfg, fault_dataset, tmp_path
    ):
        # The executor site never fires on the serial path: the plan
        # targets planner workers, and serial has none.
        with injected_faults(
            FaultSpec(site="pipeline.executor", mode="raise"),
            state_dir=str(tmp_path / "faults"),
        ):
            result, _, _ = run_once(fault_cfg, fault_dataset, "serial")
        assert len(result.cache_stats) == 16

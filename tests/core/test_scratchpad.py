"""Tests for the GPU scratchpad and Plan-stage logic (repro.core.scratchpad)."""

import numpy as np
import pytest

from repro.core.hitmap import EMPTY
from repro.core.replacement import CachePressureError
from repro.core.scratchpad import (
    GpuScratchpad,
    required_slots,
    worst_case_storage_bytes,
)
from repro.model.config import ModelConfig, tiny_config


def make_pad(num_slots=8, num_rows=100, past_window=3, **kwargs):
    return GpuScratchpad(
        num_slots=num_slots, num_rows=num_rows, past_window=past_window, **kwargs
    )


class TestPlanBatch:
    def test_cold_start_all_miss(self):
        pad = make_pad()
        plan = pad.plan_batch(np.array([3, 1, 4, 1]))
        assert plan.num_unique == 3
        assert plan.num_hits == 0
        assert plan.num_misses == 3
        assert plan.num_writebacks == 0
        assert np.array_equal(plan.unique_ids, [1, 3, 4])

    def test_second_batch_hits(self):
        pad = make_pad()
        pad.plan_batch(np.array([1, 2]))
        plan = pad.plan_batch(np.array([1, 5]))
        assert plan.num_hits == 1
        assert plan.num_misses == 1

    def test_every_unique_id_gets_slot(self):
        pad = make_pad()
        plan = pad.plan_batch(np.array([7, 7, 9, 2]))
        assert (plan.slots != EMPTY).all()
        assert len(set(plan.slots.tolist())) == plan.num_unique

    def test_hit_slot_stable_across_batches(self):
        pad = make_pad()
        first = pad.plan_batch(np.array([5]))
        second = pad.plan_batch(np.array([5]))
        assert first.slots[0] == second.slots[0]

    def test_eviction_after_window_expiry(self):
        pad = make_pad(num_slots=2, past_window=1)
        pad.plan_batch(np.array([1, 2]))  # fills both slots
        pad.plan_batch(np.array([1]))     # holds only id 1
        pad.plan_batch(np.array([1]))     # id 2's hold expired
        plan = pad.plan_batch(np.array([9]))  # must evict id 2
        assert plan.num_misses == 1
        assert plan.evicted_ids.tolist() == [2]

    def test_writeback_only_for_displaced(self):
        pad = make_pad(num_slots=4)
        plan = pad.plan_batch(np.array([1, 2]))
        assert plan.num_writebacks == 0  # vacant slots, nothing displaced

    def test_cache_pressure_raises(self):
        pad = make_pad(num_slots=2)
        with pytest.raises(CachePressureError):
            pad.plan_batch(np.array([1, 2, 3]))

    def test_future_ids_protected(self):
        pad = make_pad(num_slots=2, past_window=0)
        pad.plan_batch(np.array([1, 2]))
        pad.plan_batch(np.array([1]))  # id 2 not held by past window
        # Without future protection id 2 would be evictable; with id 2 in
        # the future window it must not be chosen.
        with pytest.raises(CachePressureError):
            pad.plan_batch(np.array([9]), future_ids=np.array([1, 2]))

    def test_future_ids_not_cached_are_ignored(self):
        pad = make_pad(num_slots=4, past_window=0)
        plan = pad.plan_batch(np.array([1]), future_ids=np.array([50, 60]))
        assert plan.num_misses == 1  # future misses impose no constraints

    def test_hitmap_updated_eagerly(self):
        # The delayed-update discipline: Hit-Map changes at Plan even though
        # Storage is untouched until Insert.
        pad = make_pad(with_storage=True, dim=2)
        pad.plan_batch(np.array([3]))
        assert 3 in pad.hit_map
        assert np.allclose(pad.storage, 0.0)  # storage still vacant


class TestTablePlanSlotsFor:
    def test_maps_repeated_ids(self):
        pad = make_pad()
        plan = pad.plan_batch(np.array([4, 2, 4]))
        slots = plan.slots_for(np.array([[4, 4], [2, 2]]))
        assert slots.shape == (2, 2)
        assert slots[0, 0] == slots[0, 1]
        assert slots[0, 0] != slots[1, 0]

    def test_uncovered_id_raises(self):
        pad = make_pad()
        plan = pad.plan_batch(np.array([4, 2]))
        with pytest.raises(KeyError):
            plan.slots_for(np.array([3]))

    def test_id_beyond_plan_range_raises(self):
        pad = make_pad()
        plan = pad.plan_batch(np.array([4, 2]))
        with pytest.raises(KeyError):
            plan.slots_for(np.array([99]))


class TestStorage:
    def test_metadata_only_rejects_storage_access(self):
        pad = make_pad()
        with pytest.raises(RuntimeError, match="metadata-only"):
            pad.read_slots(np.array([0]))

    def test_storage_requires_dim(self):
        with pytest.raises(ValueError, match="dim"):
            GpuScratchpad(num_slots=2, num_rows=10, with_storage=True)

    def test_read_write_roundtrip(self):
        pad = make_pad(with_storage=True, dim=3)
        values = np.arange(6, dtype=np.float32).reshape(2, 3)
        pad.write_slots(np.array([1, 4]), values)
        assert np.array_equal(pad.read_slots(np.array([4, 1])), values[::-1])

    def test_occupancy_tracks_hitmap(self):
        pad = make_pad(num_slots=4)
        pad.plan_batch(np.array([1, 2]))
        assert pad.occupancy() == pytest.approx(0.5)


class TestSizing:
    def test_required_slots_formula(self):
        cfg = tiny_config(rows_per_table=10_000, batch_size=4,
                          lookups_per_table=3)
        assert required_slots(cfg, window_batches=6) == 4 * 3 * 6

    def test_required_slots_capped_by_table(self):
        cfg = tiny_config(rows_per_table=10, batch_size=4, lookups_per_table=3)
        assert required_slots(cfg) == 10

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            required_slots(tiny_config(), window_batches=0)

    def test_paper_960mb_bound(self):
        # Section VI-D: (8 tables x 20 gathers x 2048 batch x 128 dim x 4 B)
        # x 6 batches = 960 MB.
        bound = worst_case_storage_bytes(ModelConfig(), window_batches=6)
        assert bound == 8 * 20 * 2048 * 128 * 4 * 6
        assert bound / 1e6 == pytest.approx(1006.6, rel=0.01)  # ~960 MiB

"""Tests for the pipeline timeline (repro.core.timeline)."""

import pytest

from repro.core.pipeline import STAGES
from repro.core.timeline import (
    PipelineTimeline,
    render_ascii,
    schedule,
)


class TestSchedule:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            schedule(0)

    def test_length(self):
        cycles = schedule(4)
        assert len(cycles) == 4 + len(STAGES) - 1

    def test_staircase(self):
        cycles = schedule(8)
        # Batch 0 walks one stage per cycle.
        for offset, stage in enumerate(STAGES):
            assert cycles[offset].batches[stage] == 0
        # Steady state: from cycle 5 on, all six stages are occupied.
        assert len(cycles[5].batches) == len(STAGES)

    def test_one_batch_retires_per_cycle(self):
        cycles = schedule(8)
        train_cycles = [c.cycle for c in cycles if "train" in c.batches]
        assert train_cycles == list(range(5, 13))

    def test_fill_and_drain(self):
        cycles = schedule(8)
        assert len(cycles[0].batches) == 1  # only Load busy
        assert len(cycles[-1].batches) == 1  # only Train busy


class TestPipelineTimeline:
    @pytest.fixture
    def timeline(self):
        stage_seconds = [
            {"plan": 0.001, "collect": 0.010, "exchange": 0.003,
             "insert": 0.004, "train": 0.006}
            for _ in range(10)
        ]
        return PipelineTimeline(stage_seconds=stage_seconds, sync_seconds=0.001)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            PipelineTimeline(stage_seconds=[])

    def test_steady_state_cycle_is_bottleneck_plus_sync(self, timeline):
        assert timeline.steady_state_cycle_seconds() == pytest.approx(0.011)

    def test_total_exceeds_steady_portion(self, timeline):
        steady = timeline.steady_state_cycle_seconds() * 10
        assert timeline.total_seconds() > steady * 0.9

    def test_bottleneck_identified(self, timeline):
        assert timeline.bottleneck_stage() == "collect"

    def test_utilisation_bounded(self, timeline):
        utilisation = timeline.stage_utilisation()
        for stage, value in utilisation.items():
            assert 0.0 <= value <= 1.0, stage
        # The bottleneck dominates the others.
        assert utilisation["collect"] > utilisation["plan"]

    def test_short_trace_no_steady_state(self):
        timeline = PipelineTimeline(
            stage_seconds=[{"train": 0.002}], sync_seconds=0.0
        )
        assert timeline.steady_state_cycle_seconds() > 0

    def test_missing_stages_cost_zero(self):
        timeline = PipelineTimeline(stage_seconds=[{}, {}], sync_seconds=0.0)
        assert timeline.total_seconds() == 0.0


class TestRenderAscii:
    def test_contains_batches(self):
        out = render_ascii(schedule(3))
        assert "B0" in out and "B2" in out
        assert out.splitlines()[0].startswith("cycle")

    def test_truncation(self):
        out = render_ascii(schedule(30), max_cycles=5)
        assert "more cycles" in out

"""Tests for the Hit-Map (repro.core.hitmap)."""

import numpy as np
import pytest

from repro.core.hitmap import EMPTY, HitMap


@pytest.fixture
def hitmap():
    return HitMap(num_slots=4, num_rows=100)


class TestConstruction:
    def test_starts_empty(self, hitmap):
        assert len(hitmap) == 0
        assert hitmap.occupancy() == 0.0
        assert hitmap.free_slot_mask().all()

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            HitMap(num_slots=0, num_rows=10)
        with pytest.raises(ValueError):
            HitMap(num_slots=4, num_rows=0)


class TestQuery:
    def test_miss_on_empty(self, hitmap):
        slots, hits = hitmap.query(np.array([1, 2, 3]))
        assert not hits.any()
        assert (slots == EMPTY).all()

    def test_negative_key_rejected(self, hitmap):
        # Regression: negative keys used to wrap-index the dense map and
        # silently return the slot cached for the *end* of the ID universe.
        with pytest.raises(ValueError, match="out of range"):
            hitmap.query(np.array([1, -3]))

    def test_too_large_key_rejected(self, hitmap):
        with pytest.raises(ValueError, match="out of range"):
            hitmap.query(np.array([0, 100]))

    def test_presorted_fast_path_checks_bounds(self, hitmap):
        with pytest.raises(ValueError, match="out of range"):
            hitmap.query(np.array([-1, 5]), presorted_unique=True)
        with pytest.raises(ValueError, match="out of range"):
            hitmap.query(np.array([5, 100]), presorted_unique=True)

    def test_presorted_fast_path_matches_slow_path(self, hitmap):
        hitmap.assign(42, 2)
        keys = np.array([7, 42, 99], dtype=np.int64)
        slow = hitmap.query(keys)
        fast = hitmap.query(keys, presorted_unique=True)
        assert np.array_equal(slow[0], fast[0])
        assert np.array_equal(slow[1], fast[1])

    def test_empty_query_ok(self, hitmap):
        slots, hits = hitmap.query(np.empty(0, dtype=np.int64))
        assert slots.size == 0 and hits.size == 0

    def test_hit_after_assign(self, hitmap):
        hitmap.assign(42, 2)
        slots, hits = hitmap.query(np.array([42, 43]))
        assert hits.tolist() == [True, False]
        assert slots[0] == 2

    def test_scalar_lookups(self, hitmap):
        hitmap.assign(7, 1)
        assert 7 in hitmap
        assert 8 not in hitmap
        assert hitmap.slot_of(7) == 1
        assert hitmap.slot_of(8) is None
        assert hitmap.key_of(1) == 7
        assert hitmap.key_of(0) == EMPTY


class TestAssign:
    def test_vacant_slot_returns_empty(self, hitmap):
        assert hitmap.assign(5, 0) == EMPTY
        assert len(hitmap) == 1

    def test_displacement(self, hitmap):
        hitmap.assign(5, 0)
        displaced = hitmap.assign(9, 0)
        assert displaced == 5
        assert 5 not in hitmap
        assert hitmap.slot_of(9) == 0
        assert len(hitmap) == 1

    def test_reassigning_cached_key_rejected(self, hitmap):
        hitmap.assign(5, 0)
        with pytest.raises(ValueError, match="already cached"):
            hitmap.assign(5, 1)

    def test_out_of_range_slot_rejected(self, hitmap):
        with pytest.raises(ValueError):
            hitmap.assign(5, 4)
        with pytest.raises(ValueError):
            hitmap.assign(5, -1)

    def test_assign_many_vectorised(self, hitmap):
        keys = np.array([10, 20, 30])
        slots = np.array([0, 1, 2])
        displaced = hitmap.assign_many(keys, slots)
        assert (displaced == EMPTY).all()
        got, hits = hitmap.query(keys)
        assert hits.all()
        assert np.array_equal(got, slots)

    def test_assign_many_displaces(self, hitmap):
        hitmap.assign_many(np.array([1, 2]), np.array([0, 1]))
        displaced = hitmap.assign_many(np.array([3, 4]), np.array([1, 0]))
        assert displaced.tolist() == [2, 1]
        assert len(hitmap) == 2

    def test_assign_many_empty_noop(self, hitmap):
        out = hitmap.assign_many(np.empty(0, np.int64), np.empty(0, np.int64))
        assert out.size == 0

    def test_length_mismatch_rejected(self, hitmap):
        with pytest.raises(ValueError, match="mismatch"):
            hitmap.assign_many(np.array([1]), np.array([0, 1]))


class TestBookkeeping:
    def test_occupancy(self, hitmap):
        hitmap.assign_many(np.array([1, 2]), np.array([0, 3]))
        assert hitmap.occupancy() == pytest.approx(0.5)

    def test_free_slot_mask(self, hitmap):
        hitmap.assign_many(np.array([1, 2]), np.array([0, 3]))
        assert hitmap.free_slot_mask().tolist() == [False, True, True, False]

    def test_keys(self, hitmap):
        hitmap.assign_many(np.array([10, 30]), np.array([2, 0]))
        assert sorted(hitmap.keys().tolist()) == [10, 30]

    def test_slots_of_keys(self, hitmap):
        hitmap.assign_many(np.array([10, 30]), np.array([2, 0]))
        assert hitmap.slots_of_keys(np.array([30, 10])).tolist() == [0, 2]

    def test_slots_of_keys_raises_on_miss(self, hitmap):
        hitmap.assign(10, 2)
        with pytest.raises(KeyError):
            hitmap.slots_of_keys(np.array([10, 11]))

    def test_size_stable_under_displacement_cycles(self, hitmap):
        for i in range(20):
            hitmap.assign(99 - i, i % 4)
        assert len(hitmap) == 4
        assert hitmap.occupancy() == 1.0

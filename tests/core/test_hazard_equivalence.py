"""Equivalence properties of the vectorised hot-loop rewrites.

The pipeline's Plan/monitor path was rewritten from per-element Python
loops to numpy array operations; these tests pin the rewrites to their
originals:

* the vectorised :class:`HazardMonitor` flags *exactly* the violations the
  legacy dict implementation flags — same messages, same order — on
  randomised traces with deliberately shrunken windows;
* the per-batch unique-ID fast path (``unique_cache=True`` /
  ``presorted_unique=True``) produces bit-identical ``TablePlan``s and
  ``PipelineResult``s versus the per-cycle ``np.unique`` seed path.
"""

import numpy as np
import pytest

from repro.core.pipeline import HazardMonitor, ScratchPipePipeline
from repro.core.scratchpad import GpuScratchpad, required_slots
from repro.data.trace import MaterialisedDataset, make_dataset
from repro.model.config import tiny_config
from repro.systems.scratchpipe_system import make_scratchpads


def make_cfg(**overrides):
    defaults = dict(
        rows_per_table=40, batch_size=3, lookups_per_table=2, num_tables=2
    )
    defaults.update(overrides)
    return tiny_config(**defaults)


def run_monitored(cfg, dataset, past_window, future_window, num_slots,
                  policy, legacy):
    pads = [
        GpuScratchpad(
            num_slots=num_slots,
            num_rows=cfg.rows_per_table,
            past_window=past_window,
            policy_name=policy,
        )
        for _ in range(cfg.num_tables)
    ]
    monitor = HazardMonitor(strict=False, legacy=legacy)
    ScratchPipePipeline(
        config=cfg,
        scratchpads=pads,
        dataset_batches=dataset,
        future_window=future_window,
        monitor=monitor,
    ).run()
    return monitor


class TestHazardMonitorEquivalence:
    """Vectorised and legacy monitors are interchangeable oracles."""

    @pytest.mark.parametrize("past_window,future_window,policy", [
        (0, 0, "random"),   # both hazard classes fire
        (1, 2, "random"),   # RAW-2/3 only
        (3, 0, "lru"),      # RAW-4 only
        (3, 2, "lru"),      # hazard-free
        (2, 1, "lfu"),
    ])
    @pytest.mark.parametrize("seed", [3, 11])
    def test_same_violations_same_order(
        self, past_window, future_window, policy, seed
    ):
        cfg = make_cfg()
        num_slots = 34
        violations = {}
        for legacy in (False, True):
            # Fresh dataset per run: scratchpad planning is deterministic,
            # so both runs see identical plans.
            dataset = make_dataset(cfg, "random", seed=seed, num_batches=60)
            monitor = run_monitored(
                cfg, dataset, past_window, future_window, num_slots,
                policy, legacy,
            )
            violations[legacy] = monitor.violations
        assert violations[False] == violations[True]

    def test_shrunken_windows_do_flag(self):
        # Guard against vacuous equivalence: the shrunken-window cases
        # above must actually produce violations.
        cfg = make_cfg()
        dataset = make_dataset(cfg, "random", seed=3, num_batches=60)
        monitor = run_monitored(cfg, dataset, 0, 0, 34, "random", legacy=False)
        assert any("RAW-2/3" in v for v in monitor.violations)
        assert any("RAW-4" in v for v in monitor.violations)


def plan_fields_equal(a, b):
    return (
        np.array_equal(a.unique_ids, b.unique_ids)
        and np.array_equal(a.slots, b.slots)
        and np.array_equal(a.hit_mask, b.hit_mask)
        and np.array_equal(a.miss_ids, b.miss_ids)
        and np.array_equal(a.fill_slots, b.fill_slots)
        and np.array_equal(a.evicted_ids, b.evicted_ids)
    )


class TestUniqueFastPathEquivalence:
    """The cached-unique Plan path is bit-identical to the seed path."""

    @pytest.mark.parametrize("locality", ["random", "medium", "high"])
    def test_table_plans_bit_identical(self, locality):
        cfg = make_cfg(rows_per_table=300, batch_size=6, num_tables=1)
        dataset = MaterialisedDataset(
            make_dataset(cfg, locality, seed=7, num_batches=25)
        )
        slots = required_slots(cfg)
        slow_pad = GpuScratchpad(num_slots=slots, num_rows=cfg.rows_per_table)
        fast_pad = GpuScratchpad(num_slots=slots, num_rows=cfg.rows_per_table)
        n = len(dataset)
        for index in range(n):
            batch = dataset.batch(index)
            future = [dataset.batch(i) for i in (index + 1, index + 2) if i < n]
            slow_future = (
                np.concatenate([b.table_ids(0) for b in future])
                if future else None
            )
            fast_future = (
                np.concatenate([b.unique_table_ids(0) for b in future])
                if future else None
            )
            slow_plan = slow_pad.plan_batch(batch.sparse_ids[0], slow_future)
            fast_plan = fast_pad.plan_batch(
                batch.unique_table_ids(0), fast_future, presorted_unique=True
            )
            assert plan_fields_equal(slow_plan, fast_plan), f"batch {index}"

    @pytest.mark.parametrize("locality", ["random", "high"])
    def test_pipeline_results_bit_identical(self, locality):
        cfg = make_cfg(rows_per_table=300, batch_size=6)
        results = {}
        monitors = {}
        for unique_cache in (False, True):
            dataset = MaterialisedDataset(
                make_dataset(cfg, locality, seed=9, num_batches=30)
            )
            monitor = HazardMonitor(strict=False)
            result = ScratchPipePipeline(
                config=cfg,
                scratchpads=make_scratchpads(cfg, required_slots(cfg)),
                dataset_batches=dataset,
                monitor=monitor,
                unique_cache=unique_cache,
            ).run()
            results[unique_cache] = result
            monitors[unique_cache] = monitor
        assert results[False].cache_stats == results[True].cache_stats
        assert results[False].train_hit_rate == results[True].train_hit_rate
        assert monitors[False].violations == monitors[True].violations == []

"""Reset-and-reuse paths: scratchpads (and their dense Hit-Maps) must be
reusable across runs with bit-identical results and zero re-allocation."""

import numpy as np
import pytest

from repro.core.hitmap import EMPTY, HitMap
from repro.core.holdmask import HoldMask
from repro.core.pipeline import HazardMonitor
from repro.data.trace import MaterialisedDataset, make_dataset
from repro.hardware.spec import DEFAULT_HARDWARE
from repro.model.config import tiny_config
from repro.systems.scratchpipe_system import ScratchPipeSystem
from repro.systems.strawman_system import StrawmanSystem


@pytest.fixture
def cfg():
    return tiny_config(
        rows_per_table=2_000, batch_size=8, lookups_per_table=4, num_tables=2
    )


def _stats_tuples(stats):
    return [
        (s.batch_index, s.unique_ids, s.hits, s.misses, s.writebacks,
         s.per_table_misses)
        for s in stats
    ]


class TestHitMapReset:
    def test_reset_empties_in_place(self):
        hitmap = HitMap(num_slots=8, num_rows=100)
        hitmap.assign_many(
            np.array([5, 17, 99], dtype=np.int64),
            np.array([0, 3, 7], dtype=np.int64),
        )
        slot_of_key = hitmap._slot_of_key
        key_of_slot = hitmap._key_of_slot
        hitmap.reset()
        # Same arrays, fully cleared.
        assert hitmap._slot_of_key is slot_of_key
        assert hitmap._key_of_slot is key_of_slot
        assert len(hitmap) == 0
        assert (slot_of_key == EMPTY).all()
        assert (key_of_slot == EMPTY).all()


class TestHoldMaskReset:
    def test_reset_clears_holds_and_clock(self):
        mask = HoldMask(num_slots=6, past_window=3)
        mask.hold(np.array([1, 4]))
        mask.advance()
        mask.reset()
        assert mask.held_count() == 0
        assert mask.clock == 0
        assert mask.eligible_mask().all()


class TestSystemReuse:
    @pytest.mark.parametrize("policy", ["lru", "lfu", "random"])
    def test_simulate_cache_reuse_is_bit_identical(self, cfg, policy):
        trace = MaterialisedDataset(
            make_dataset(cfg, "medium", seed=4, num_batches=16)
        )
        fresh = ScratchPipeSystem(
            cfg, DEFAULT_HARDWARE, cache_fraction=0.1, policy_name=policy
        )
        reference = _stats_tuples(fresh.simulate_cache(trace))

        reused = ScratchPipeSystem(
            cfg, DEFAULT_HARDWARE, cache_fraction=0.1, policy_name=policy
        )
        first = _stats_tuples(
            reused.simulate_cache(trace, monitor=HazardMonitor(strict=True))
        )
        second = _stats_tuples(
            reused.simulate_cache(trace, monitor=HazardMonitor(strict=True))
        )
        assert first == reference
        assert second == reference

    def test_reuse_allocates_hit_maps_once(self, cfg, monkeypatch):
        """One Hit-Map allocation per table per system, however many runs."""
        constructions = []
        original = HitMap.__post_init__

        def counting(self):
            constructions.append(self.num_rows)
            original(self)

        monkeypatch.setattr(HitMap, "__post_init__", counting)
        trace = MaterialisedDataset(
            make_dataset(cfg, "medium", seed=4, num_batches=12)
        )
        system = ScratchPipeSystem(cfg, DEFAULT_HARDWARE, cache_fraction=0.1)
        for _ in range(3):
            system.run_trace(trace)
        assert len(constructions) == cfg.num_tables

    def test_strawman_reuse_is_bit_identical(self, cfg):
        trace = MaterialisedDataset(
            make_dataset(cfg, "medium", seed=9, num_batches=12)
        )
        system = StrawmanSystem(cfg, DEFAULT_HARDWARE, cache_fraction=0.2)
        first = system.run_trace(trace).iteration_times
        second = system.run_trace(trace).iteration_times
        assert first == second


class TestSweepSystemMemoisation:
    def test_run_point_reuses_one_system(self, cfg, monkeypatch):
        from repro.analysis import sweep
        from repro.analysis.experiments import ExperimentSetup

        sweep._cached_system.cache_clear()
        sweep._cached_trace.cache_clear()
        constructions = []
        original = HitMap.__post_init__

        def counting(self):
            constructions.append(self.num_rows)
            original(self)

        monkeypatch.setattr(HitMap, "__post_init__", counting)
        setup = ExperimentSetup(config=cfg, num_batches=10, seed=1)
        point = setup.point("scratchpipe", "medium", 0.1, 2)
        first = sweep.run_point(point)
        after_first = len(constructions)
        # Same (system, scale) again — same result, no new Hit-Maps.
        for locality in ("medium", "high", "medium"):
            sweep.run_point(setup.point("scratchpipe", locality, 0.1, 2))
        assert sweep.run_point(point) == first
        assert len(constructions) == after_first == cfg.num_tables
        sweep._cached_system.cache_clear()
        sweep._cached_trace.cache_clear()

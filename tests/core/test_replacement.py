"""Tests for replacement policies (repro.core.replacement)."""

import numpy as np
import pytest

from repro.core.replacement import (
    CachePressureError,
    LfuPolicy,
    LruPolicy,
    RandomPolicy,
    make_policy,
)


def all_eligible(n):
    return np.ones(n, dtype=bool)


class TestFactory:
    @pytest.mark.parametrize("name,cls", [
        ("lru", LruPolicy), ("LFU", LfuPolicy), ("random", RandomPolicy),
    ])
    def test_make_policy(self, name, cls):
        assert isinstance(make_policy(name, 4), cls)

    def test_unknown_policy(self):
        with pytest.raises(ValueError, match="unknown policy"):
            make_policy("fifo", 4)

    def test_invalid_slot_count(self):
        with pytest.raises(ValueError):
            LruPolicy(num_slots=0)


class TestSelection:
    def test_prefers_vacant_slots(self):
        policy = LruPolicy(num_slots=4)
        policy.record_use(np.array([0, 1]), cycle=1)
        victims = set(policy.select(all_eligible(4), 2).tolist())
        assert victims == {2, 3}

    def test_lru_evicts_oldest(self):
        policy = LruPolicy(num_slots=3)
        policy.record_use(np.array([0]), cycle=1)
        policy.record_use(np.array([1]), cycle=2)
        policy.record_use(np.array([2]), cycle=3)
        assert policy.select(all_eligible(3), 1).tolist() == [0]

    def test_lru_respects_refresh(self):
        policy = LruPolicy(num_slots=2)
        policy.record_use(np.array([0]), cycle=1)
        policy.record_use(np.array([1]), cycle=2)
        policy.record_use(np.array([0]), cycle=3)  # slot 0 refreshed
        assert policy.select(all_eligible(2), 1).tolist() == [1]

    def test_lfu_evicts_least_frequent(self):
        policy = LfuPolicy(num_slots=2)
        policy.record_use(np.array([0]), cycle=1)
        policy.record_use(np.array([0]), cycle=2)
        policy.record_use(np.array([1]), cycle=3)
        assert policy.select(all_eligible(2), 1).tolist() == [1]

    def test_random_respects_eligibility(self):
        policy = RandomPolicy(num_slots=10, seed=3)
        policy.record_use(np.arange(10), cycle=1)
        eligible = np.zeros(10, dtype=bool)
        eligible[[2, 5, 7]] = True
        for _ in range(5):
            victims = policy.select(eligible, 2)
            assert set(victims.tolist()) <= {2, 5, 7}
            assert len(set(victims.tolist())) == 2

    def test_zero_count_returns_empty(self):
        policy = LruPolicy(num_slots=3)
        assert policy.select(all_eligible(3), 0).size == 0

    def test_selected_victims_distinct(self):
        policy = LruPolicy(num_slots=8)
        policy.record_use(np.arange(8), cycle=1)
        victims = policy.select(all_eligible(8), 5)
        assert len(set(victims.tolist())) == 5

    def test_ineligible_never_selected(self):
        policy = LruPolicy(num_slots=6)
        policy.record_use(np.arange(6), cycle=1)
        eligible = np.array([False, True, False, True, False, True])
        victims = policy.select(eligible, 3)
        assert set(victims.tolist()) == {1, 3, 5}


class TestCachePressure:
    def test_pressure_error_raised(self):
        policy = LruPolicy(num_slots=2)
        with pytest.raises(CachePressureError, match="enlarge the scratchpad"):
            policy.select(np.zeros(2, dtype=bool), 1)

    def test_pressure_error_on_partial_shortage(self):
        policy = LruPolicy(num_slots=4)
        eligible = np.array([True, False, False, False])
        with pytest.raises(CachePressureError):
            policy.select(eligible, 2)


class TestRecordUse:
    def test_empty_record_noop(self):
        policy = LruPolicy(num_slots=2)
        policy.record_use(np.empty(0, dtype=np.int64), cycle=5)
        # Both slots still look vacant -> selected before any used slot.
        victims = policy.select(all_eligible(2), 2)
        assert set(victims.tolist()) == {0, 1}

"""Tests for the straw-man sequential dynamic cache (repro.core.strawman)."""

import numpy as np
import pytest

from repro.core.strawman import StrawmanCache, make_strawman_scratchpads
from repro.data.trace import make_dataset
from repro.model.config import tiny_config


@pytest.fixture
def cfg():
    return tiny_config(rows_per_table=200, batch_size=6, lookups_per_table=2,
                       num_tables=2)


@pytest.fixture
def dataset(cfg):
    return make_dataset(cfg, "high", seed=9, num_batches=16)


class TestConstruction:
    def test_scratchpads_use_zero_past_window(self, cfg):
        pads = make_strawman_scratchpads(cfg, num_slots=16)
        assert all(p.past_window == 0 for p in pads)
        assert len(pads) == cfg.num_tables

    def test_table_count_validated(self, cfg):
        pads = make_strawman_scratchpads(cfg, num_slots=16)[:1]
        with pytest.raises(ValueError):
            StrawmanCache(config=cfg, scratchpads=pads)


class TestMetadataRun:
    def test_stats_shape(self, cfg, dataset):
        cache = StrawmanCache(
            config=cfg, scratchpads=make_strawman_scratchpads(cfg, 64)
        )
        stats = cache.run(dataset)
        assert len(stats) == 16
        assert all(s.hits + s.misses == s.unique_ids for s in stats)

    def test_high_locality_hits_accumulate(self, cfg, dataset):
        cache = StrawmanCache(
            config=cfg, scratchpads=make_strawman_scratchpads(cfg, 64)
        )
        stats = cache.run(dataset)
        assert np.mean([s.hit_rate for s in stats[8:]]) > 0.3

    def test_partial_run_validation(self, cfg, dataset):
        cache = StrawmanCache(
            config=cfg, scratchpads=make_strawman_scratchpads(cfg, 64)
        )
        with pytest.raises(ValueError):
            cache.run(dataset, num_batches=0)

    def test_small_cache_evicts_and_writes_back(self, cfg, dataset):
        # With a cache smaller than the working set, steady state must show
        # evictions (write-backs of dirty victims).
        cache = StrawmanCache(
            config=cfg, scratchpads=make_strawman_scratchpads(cfg, 14)
        )
        stats = cache.run(dataset)
        assert sum(s.writebacks for s in stats[4:]) > 0


class TestFunctionalRun:
    def test_value_preservation_without_training(self, cfg, dataset):
        rng = np.random.default_rng(1)
        cpu_tables = [
            rng.standard_normal((cfg.rows_per_table, cfg.embedding_dim)).astype(
                np.float32
            )
            for _ in range(cfg.num_tables)
        ]
        originals = [t.copy() for t in cpu_tables]
        cache = StrawmanCache(
            config=cfg,
            scratchpads=make_strawman_scratchpads(cfg, 14, with_storage=True),
            cpu_tables=cpu_tables,
        )
        cache.run(dataset)
        for t in range(cfg.num_tables):
            assert np.array_equal(cpu_tables[t], originals[t])
        for t, pad in enumerate(cache.scratchpads):
            keys = pad.hit_map.keys()
            slots = pad.hit_map.slots_of_keys(keys)
            assert np.array_equal(pad.storage[slots], originals[t][keys])

"""Equivalence of the incremental victim selection with the scan oracle.

The incremental candidate queues (``legacy=False``, the default) must pick
*bit-identical* victims, in identical order, to the retained full-scan
policies (``legacy=True``) under arbitrary interleavings of hold / advance /
record_use / select / reset — for all three policies, including selects
whose victims are never used afterwards (selection is a pure query) and
states rebuilt after ``reset()``.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.holdmask import HoldMask
from repro.core.replacement import (
    CachePressureError,
    LfuPolicy,
    LruPolicy,
    RandomPolicy,
    make_policy,
)

NUM_SLOTS = 24
PAST_WINDOW = 2

POLICIES = ("lru", "lfu", "random")


def _subset(draw, max_size=8):
    return draw(
        st.lists(
            st.integers(0, NUM_SLOTS - 1), max_size=max_size, unique=True
        )
    )


@st.composite
def op_sequences(draw):
    ops = []
    for _ in range(draw(st.integers(1, 40))):
        kind = draw(
            st.sampled_from(
                ["advance", "use", "hold", "select", "select", "reset"]
            )
        )
        if kind in ("use", "hold"):
            ops.append((kind, _subset(draw)))
        elif kind == "select":
            ops.append(
                (
                    "select",
                    draw(st.integers(0, 6)),
                    _subset(draw, max_size=6),   # transient slots
                    draw(st.booleans()),         # use the victims afterwards?
                )
            )
        else:
            ops.append((kind,))
    return ops


def _replay(policy_name, legacy, ops):
    """Replay one op sequence; returns the trace of select outcomes."""
    mask = HoldMask(num_slots=NUM_SLOTS, past_window=PAST_WINDOW)
    policy = make_policy(policy_name, NUM_SLOTS, legacy=legacy)
    policy.bind_hold_mask(mask)
    outcomes = []
    cycle = 0
    for op in ops:
        if op[0] == "advance":
            mask.advance()
        elif op[0] == "use":
            slots = np.array(op[1], dtype=np.int64)
            cycle += 1
            mask.hold(slots)
            policy.record_use(slots, cycle)
        elif op[0] == "hold":
            mask.hold(np.array(op[1], dtype=np.int64))
        elif op[0] == "reset":
            mask.reset()
            policy.reset()
        else:
            _, count, transient, use_victims = op
            transient = np.array(transient, dtype=np.int64)
            try:
                if legacy:
                    eligible = mask.eligible_mask()
                    if transient.size:
                        eligible[transient] = False
                    victims = policy.select(eligible, count)
                else:
                    victims = policy.select_eligible(count, transient)
            except CachePressureError:
                outcomes.append("pressure")
                continue
            outcomes.append(victims.tolist())
            assert len(set(victims.tolist())) == victims.size
            if use_victims and victims.size:
                cycle += 1
                mask.hold(victims)
                policy.record_use(victims, cycle)
    return outcomes


class TestIncrementalMatchesOracle:
    @pytest.mark.parametrize("policy_name", POLICIES)
    @given(ops=op_sequences())
    @settings(max_examples=120, deadline=None)
    def test_identical_victims_and_pressure(self, policy_name, ops):
        oracle = _replay(policy_name, True, ops)
        incremental = _replay(policy_name, False, ops)
        assert oracle == incremental

    @pytest.mark.parametrize("policy_name", POLICIES)
    def test_repeated_select_is_pure(self, policy_name):
        """Selection must not consume candidacy: with unchanged state the
        same victims come back (matching the stateless scan oracle)."""
        mask = HoldMask(num_slots=NUM_SLOTS, past_window=PAST_WINDOW)
        policy = make_policy(policy_name, NUM_SLOTS, legacy=False)
        policy.bind_hold_mask(mask)
        slots = np.arange(10, dtype=np.int64)
        mask.hold(slots)
        policy.record_use(slots, cycle=1)
        for _ in range(PAST_WINDOW + 1):
            mask.advance()
        first = policy.select_eligible(4)
        second = policy.select_eligible(4)
        assert np.array_equal(first, second)


class TestCanonicalOrder:
    def test_lru_victims_ordered_by_age_then_slot(self):
        mask = HoldMask(num_slots=8, past_window=0)
        policy = LruPolicy(num_slots=8)
        policy.bind_hold_mask(mask)
        policy.record_use(np.array([5, 1]), cycle=1)
        policy.record_use(np.array([3]), cycle=2)
        mask.advance()
        # Vacant slots first (ascending), then cycle-1 users (ascending),
        # then the cycle-2 user.
        victims = policy.select_eligible(8)
        assert victims.tolist() == [0, 2, 4, 6, 7, 1, 5, 3]

    def test_lfu_victims_ordered_by_count_then_slot(self):
        mask = HoldMask(num_slots=6, past_window=0)
        policy = LfuPolicy(num_slots=6)
        policy.bind_hold_mask(mask)
        for cycle in range(1, 4):
            policy.record_use(np.array([4]), cycle=cycle)   # count 3
        policy.record_use(np.array([0, 2]), cycle=4)        # count 1
        mask.advance()
        victims = policy.select_eligible(6)
        assert victims.tolist() == [1, 3, 5, 0, 2, 4]


class TestRandomVacancyOrder:
    """Regression: the vacancy-fill order of RandomPolicy is pinned to
    ascending slot index, for both implementations."""

    @pytest.mark.parametrize("legacy", [False, True])
    def test_warmup_fills_sorted_vacancies(self, legacy):
        mask = HoldMask(num_slots=12, past_window=1)
        policy = RandomPolicy(num_slots=12, legacy=legacy, seed=7)
        policy.bind_hold_mask(mask)
        used = np.array([0, 3, 4], dtype=np.int64)
        mask.hold(used)
        policy.record_use(used, cycle=1)
        for _ in range(2):
            mask.advance()
        if legacy:
            victims = policy.select(mask.eligible_mask(), 5)
        else:
            victims = policy.select_eligible(5)
        # Deterministic warm-up: the five smallest vacant slot indices.
        assert victims.tolist() == [1, 2, 5, 6, 7]

    def test_eviction_tail_matches_oracle_draws(self):
        """Once vacancies run out, both implementations must consume the
        RNG identically (the sensitivity figures depend on every draw)."""
        outcomes = []
        for legacy in (True, False):
            mask = HoldMask(num_slots=10, past_window=0)
            policy = RandomPolicy(num_slots=10, legacy=legacy, seed=3)
            policy.bind_hold_mask(mask)
            picks = []
            for cycle in range(1, 9):
                slots = np.array([(cycle * 3) % 10, (cycle * 7) % 10])
                mask.hold(slots)
                policy.record_use(slots, cycle)
                mask.advance()
                if legacy:
                    picks.append(policy.select(mask.eligible_mask(), 4).tolist())
                else:
                    picks.append(policy.select_eligible(4).tolist())
            outcomes.append(picks)
        assert outcomes[0] == outcomes[1]


class TestPostResetEquivalence:
    @pytest.mark.parametrize("policy_name", POLICIES)
    def test_reset_restores_fresh_behaviour(self, policy_name):
        ops = (
            [("use", [1, 2, 3]), ("advance",), ("select", 3, [], True)]
            * (PAST_WINDOW + 2)
        )
        fresh = _replay(policy_name, False, ops)
        again = _replay(policy_name, False, [("reset",)] + ops)
        assert fresh == again


class TestPipelineOracleEquivalence:
    """Whole-pipeline check: scan-oracle scratchpads and incremental
    scratchpads produce bit-identical cache statistics."""

    @pytest.mark.parametrize("policy_name", POLICIES)
    def test_metadata_stats_identical(self, policy_name):
        from repro.core.pipeline import HazardMonitor, ScratchPipePipeline
        from repro.data.trace import make_dataset
        from repro.model.config import tiny_config
        from repro.systems.scratchpipe_system import make_scratchpads

        cfg = tiny_config(
            rows_per_table=500, batch_size=6, lookups_per_table=3, num_tables=2
        )
        dataset = make_dataset(cfg, "random", seed=11, num_batches=30)

        def run(legacy):
            pipeline = ScratchPipePipeline(
                config=cfg,
                scratchpads=make_scratchpads(
                    cfg, 150, policy_name=policy_name, legacy_select=legacy
                ),
                dataset_batches=dataset,
                monitor=HazardMonitor(strict=True),
            )
            return [
                (s.batch_index, s.unique_ids, s.hits, s.misses, s.writebacks,
                 s.per_table_misses)
                for s in pipeline.run().cache_stats
            ]

        assert run(True) == run(False)

"""Tests for the full DLRM model (repro.model.dlrm)."""

import numpy as np
import pytest

from repro.data.trace import make_dataset
from repro.model.config import tiny_config
from repro.model.dlrm import DLRMModel, DenseNetwork
from repro.model.optimizer import SGD


@pytest.fixture
def cfg():
    return tiny_config(rows_per_table=100, batch_size=8, lookups_per_table=3,
                       num_tables=2)


@pytest.fixture
def dataset(cfg):
    return make_dataset(cfg, "medium", seed=2, num_batches=30, with_dense=True)


class TestDenseNetwork:
    def test_forward_shape(self, cfg):
        rng = np.random.default_rng(0)
        net = DenseNetwork.initialise(cfg, rng)
        dense = rng.standard_normal(
            (cfg.batch_size, cfg.num_dense_features)
        ).astype(np.float32)
        pooled = rng.standard_normal(
            (cfg.batch_size, cfg.num_tables, cfg.embedding_dim)
        ).astype(np.float32)
        logits = net.forward(dense, pooled)
        assert logits.shape == (cfg.batch_size,)

    def test_loss_before_forward_raises(self, cfg):
        net = DenseNetwork.initialise(cfg, np.random.default_rng(0))
        with pytest.raises(RuntimeError):
            net.loss(np.zeros(4, dtype=np.float32))

    def test_backward_returns_pooled_grad(self, cfg):
        rng = np.random.default_rng(0)
        net = DenseNetwork.initialise(cfg, rng)
        dense = rng.standard_normal(
            (cfg.batch_size, cfg.num_dense_features)
        ).astype(np.float32)
        pooled = rng.standard_normal(
            (cfg.batch_size, cfg.num_tables, cfg.embedding_dim)
        ).astype(np.float32)
        net.forward(dense, pooled)
        labels = np.zeros(cfg.batch_size, dtype=np.float32)
        grad = net.backward(labels)
        assert grad.shape == pooled.shape
        assert np.isfinite(grad).all()
        assert np.abs(grad).max() > 0

    def test_pooled_gradient_numerically(self, cfg):
        rng = np.random.default_rng(7)
        net = DenseNetwork.initialise(cfg, rng)
        dense = rng.standard_normal(
            (cfg.batch_size, cfg.num_dense_features)
        ).astype(np.float32)
        pooled = rng.standard_normal(
            (cfg.batch_size, cfg.num_tables, cfg.embedding_dim)
        ).astype(np.float32)
        labels = (rng.random(cfg.batch_size) < 0.5).astype(np.float32)
        net.forward(dense, pooled)
        grad = net.backward(labels)
        eps = 1e-3
        # Spot-check a handful of coordinates against central differences.
        for idx in [(0, 0, 0), (1, 1, 2), (3, 0, 5)]:
            orig = pooled[idx]
            pooled[idx] = orig + eps
            net.forward(dense, pooled)
            up = net.loss(labels)
            pooled[idx] = orig - eps
            net.forward(dense, pooled)
            down = net.loss(labels)
            pooled[idx] = orig
            assert grad[idx] == pytest.approx((up - down) / (2 * eps), abs=1e-3)

    def test_copy_parameters(self, cfg):
        a = DenseNetwork.initialise(cfg, np.random.default_rng(0))
        b = DenseNetwork.initialise(cfg, np.random.default_rng(1))
        b.copy_parameters_from(a)
        x = np.random.default_rng(2).standard_normal(
            (cfg.batch_size, cfg.num_dense_features)
        ).astype(np.float32)
        pooled = np.zeros(
            (cfg.batch_size, cfg.num_tables, cfg.embedding_dim), np.float32
        )
        assert np.allclose(a.forward(x, pooled), b.forward(x, pooled))


class TestDLRMModel:
    def test_deterministic_initialisation(self, cfg):
        a = DLRMModel.initialise(cfg, seed=9)
        b = DLRMModel.initialise(cfg, seed=9)
        assert np.array_equal(a.tables[0].weights, b.tables[0].weights)

    def test_train_step_returns_finite_loss(self, cfg, dataset):
        model = DLRMModel.initialise(cfg, seed=0)
        loss = model.train_step(dataset.batch(0))
        assert np.isfinite(loss) and loss > 0

    def test_training_reduces_loss(self, cfg, dataset):
        model = DLRMModel.initialise(cfg, seed=0, optimizer=SGD(lr=0.05))
        losses = [model.train_step(dataset.batch(i)) for i in range(30)]
        assert np.mean(losses[-5:]) < np.mean(losses[:5])

    def test_train_step_requires_dense(self, cfg):
        model = DLRMModel.initialise(cfg, seed=0)
        id_only = make_dataset(cfg, "medium", num_batches=1)
        with pytest.raises(ValueError, match="dense"):
            model.train_step(id_only.batch(0))

    def test_train_step_updates_gathered_rows_only(self, cfg, dataset):
        model = DLRMModel.initialise(cfg, seed=0)
        before = [t.weights.copy() for t in model.tables]
        batch = dataset.batch(0)
        model.train_step(batch)
        for t in range(cfg.num_tables):
            touched = np.unique(batch.sparse_ids[t])
            untouched = np.setdiff1d(np.arange(cfg.rows_per_table), touched)
            assert np.array_equal(
                model.tables[t].weights[untouched], before[t][untouched]
            )
            assert not np.allclose(
                model.tables[t].weights[touched], before[t][touched]
            )

    def test_predict_probabilities(self, cfg, dataset):
        model = DLRMModel.initialise(cfg, seed=0)
        probs = model.predict(dataset.batch(0))
        assert probs.shape == (cfg.batch_size,)
        assert (probs >= 0).all() and (probs <= 1).all()

    def test_pooled_embeddings_shape(self, cfg, dataset):
        model = DLRMModel.initialise(cfg, seed=0)
        pooled = model.pooled_embeddings(dataset.batch(0))
        assert pooled.shape == (
            cfg.batch_size, cfg.num_tables, cfg.embedding_dim
        )

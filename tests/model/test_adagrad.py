"""Tests for the Adagrad optimiser (repro.model.adagrad)."""

import numpy as np
import pytest

from repro.data.trace import make_dataset
from repro.model.adagrad import AdagradOptimizer, DenseAdagrad, SparseAdagrad
from repro.model.config import tiny_config
from repro.model.dlrm import DLRMModel
from repro.model.mlp import MLP


class TestSparseAdagrad:
    def test_validation(self):
        with pytest.raises(ValueError):
            SparseAdagrad(num_rows=0)
        with pytest.raises(ValueError):
            SparseAdagrad(num_rows=5, lr=0.0)

    def test_first_update_normalised(self):
        opt = SparseAdagrad(num_rows=10, lr=0.1, eps=0.0)
        weights = np.zeros((10, 2), dtype=np.float32)
        grads = np.array([[3.0, 4.0]], dtype=np.float32)
        opt.update(weights, np.array([2]), grads)
        # accumulator = mean(g^2) = 12.5; scale = 0.1/sqrt(12.5)
        expected = -0.1 / np.sqrt(12.5) * grads[0]
        assert np.allclose(weights[2], expected, atol=1e-6)

    def test_accumulator_grows(self):
        opt = SparseAdagrad(num_rows=4, lr=0.1)
        weights = np.zeros((4, 2), dtype=np.float32)
        g = np.ones((1, 2), dtype=np.float32)
        opt.update(weights, np.array([1]), g)
        first = opt.accumulator(np.array([1]))[0]
        opt.update(weights, np.array([1]), g)
        assert opt.accumulator(np.array([1]))[0] == pytest.approx(2 * first)

    def test_effective_lr_decays(self):
        opt = SparseAdagrad(num_rows=4, lr=0.1)
        weights = np.zeros((4, 1), dtype=np.float32)
        g = np.ones((1, 1), dtype=np.float32)
        opt.update(weights, np.array([0]), g)
        step1 = abs(weights[0, 0])
        before = weights[0, 0]
        opt.update(weights, np.array([0]), g)
        step2 = abs(weights[0, 0] - before)
        assert step2 < step1

    def test_untouched_rows_unchanged(self):
        opt = SparseAdagrad(num_rows=4, lr=0.1)
        weights = np.ones((4, 2), dtype=np.float32)
        opt.update(weights, np.array([1]), np.ones((1, 2), np.float32))
        assert np.allclose(weights[[0, 2, 3]], 1.0)

    def test_empty_update_noop(self):
        opt = SparseAdagrad(num_rows=4, lr=0.1)
        weights = np.ones((4, 2), dtype=np.float32)
        opt.update(weights, np.empty(0, np.int64), np.empty((0, 2), np.float32))
        assert np.allclose(weights, 1.0)

    def test_length_mismatch_rejected(self):
        opt = SparseAdagrad(num_rows=4)
        with pytest.raises(ValueError):
            opt.update(np.zeros((4, 2), np.float32), np.array([1]),
                       np.zeros((2, 2), np.float32))


class TestDenseAdagrad:
    def test_step_before_backward_raises(self):
        mlp = MLP.initialise(3, (2,), np.random.default_rng(0))
        with pytest.raises(RuntimeError):
            DenseAdagrad(lr=0.1).step(mlp)

    def test_step_applies_and_clears(self):
        rng = np.random.default_rng(0)
        mlp = MLP.initialise(3, (2,), rng)
        x = rng.standard_normal((4, 3)).astype(np.float32)
        mlp.forward(x)
        mlp.backward(np.ones((4, 2), dtype=np.float32))
        before = mlp.layers[0].weight.copy()
        opt = DenseAdagrad(lr=0.1)
        opt.step(mlp)
        assert not np.allclose(mlp.layers[0].weight, before)
        assert mlp.layers[0].grad_weight is None

    def test_adaptive_scaling(self):
        # A constant gradient shrinks each successive Adagrad step.
        rng = np.random.default_rng(0)
        mlp = MLP.initialise(2, (1,), rng)
        opt = DenseAdagrad(lr=0.1)
        x = np.ones((1, 2), dtype=np.float32)
        deltas = []
        for _ in range(3):
            before = mlp.layers[0].weight.copy()
            mlp.forward(x)
            mlp.backward(np.ones((1, 1), dtype=np.float32))
            opt.step(mlp)
            deltas.append(np.abs(mlp.layers[0].weight - before).max())
        assert deltas[0] > deltas[1] > deltas[2]


class TestAdagradOptimizer:
    def test_drop_in_for_dlrm(self):
        cfg = tiny_config(rows_per_table=100, batch_size=8,
                          lookups_per_table=2, num_tables=2)
        dataset = make_dataset(cfg, "medium", seed=1, num_batches=25,
                               with_dense=True)
        model = DLRMModel.initialise(cfg, seed=0,
                                     optimizer=AdagradOptimizer(lr=0.05))
        losses = [model.train_step(dataset.batch(i)) for i in range(25)]
        assert all(np.isfinite(l) for l in losses)
        assert np.mean(losses[-5:]) < np.mean(losses[:5])

    def test_separate_state_per_table(self):
        cfg = tiny_config(rows_per_table=50, batch_size=4,
                          lookups_per_table=2, num_tables=2)
        dataset = make_dataset(cfg, "medium", seed=2, num_batches=2,
                               with_dense=True)
        opt = AdagradOptimizer(lr=0.05)
        model = DLRMModel.initialise(cfg, seed=0, optimizer=opt)
        model.train_step(dataset.batch(0))
        assert len(opt._sparse) == cfg.num_tables

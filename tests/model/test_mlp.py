"""Tests for the MLP (repro.model.mlp), including numerical gradient checks."""

import numpy as np
import pytest

from repro.model.mlp import MLP, LinearLayer


@pytest.fixture
def rng():
    return np.random.default_rng(21)


def numerical_grad(f, x, eps=1e-4):
    """Central-difference gradient of scalar f w.r.t. array x."""
    grad = np.zeros_like(x, dtype=np.float64)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = x[idx]
        x[idx] = orig + eps
        up = f()
        x[idx] = orig - eps
        down = f()
        x[idx] = orig
        grad[idx] = (up - down) / (2 * eps)
        it.iternext()
    return grad


class TestLinearLayer:
    def test_forward_affine(self, rng):
        layer = LinearLayer.initialise(3, 2, rng)
        x = rng.standard_normal((4, 3)).astype(np.float32)
        out = layer.forward(x)
        assert np.allclose(out, x @ layer.weight + layer.bias, atol=1e-6)

    def test_backward_before_forward_raises(self, rng):
        layer = LinearLayer.initialise(3, 2, rng)
        with pytest.raises(RuntimeError):
            layer.backward(np.zeros((1, 2), np.float32))

    def test_step_before_backward_raises(self, rng):
        layer = LinearLayer.initialise(3, 2, rng)
        with pytest.raises(RuntimeError):
            layer.step(0.1)

    def test_weight_gradient_numerically(self, rng):
        layer = LinearLayer.initialise(3, 2, rng)
        x = rng.standard_normal((5, 3)).astype(np.float32)
        g = rng.standard_normal((5, 2)).astype(np.float32)

        def loss():
            return float((layer.forward(x.copy()) * g).sum())

        layer.forward(x)
        layer.backward(g)
        numeric = numerical_grad(loss, layer.weight)
        assert np.allclose(layer.grad_weight, numeric, atol=1e-2)

    def test_input_gradient(self, rng):
        layer = LinearLayer.initialise(3, 2, rng)
        x = rng.standard_normal((5, 3)).astype(np.float32)
        g = rng.standard_normal((5, 2)).astype(np.float32)
        layer.forward(x)
        grad_in = layer.backward(g)
        assert np.allclose(grad_in, g @ layer.weight.T, atol=1e-6)

    def test_step_applies_and_clears(self, rng):
        layer = LinearLayer.initialise(3, 2, rng)
        x = np.ones((1, 3), dtype=np.float32)
        layer.forward(x)
        layer.backward(np.ones((1, 2), dtype=np.float32))
        before = layer.weight.copy()
        layer.step(0.5)
        assert not np.allclose(layer.weight, before)
        assert layer.grad_weight is None


class TestMLP:
    def test_requires_layers(self, rng):
        with pytest.raises(ValueError):
            MLP.initialise(4, (), rng)

    def test_forward_shape(self, rng):
        mlp = MLP.initialise(4, (8, 3), rng)
        out = mlp.forward(rng.standard_normal((6, 4)).astype(np.float32))
        assert out.shape == (6, 3)

    def test_final_layer_linear(self, rng):
        # The last layer must not apply ReLU: outputs can be negative.
        mlp = MLP.initialise(4, (8, 3), rng)
        outs = [
            mlp.forward(rng.standard_normal((16, 4)).astype(np.float32))
            for _ in range(5)
        ]
        assert min(o.min() for o in outs) < 0

    def test_hidden_relu_applied(self, rng):
        mlp = MLP.initialise(2, (4, 1), rng)
        x = rng.standard_normal((8, 2)).astype(np.float32)
        mlp.forward(x)
        hidden = mlp.layers[0].forward(x)
        relu = hidden * (hidden > 0)
        expected = relu @ mlp.layers[1].weight + mlp.layers[1].bias
        assert np.allclose(mlp.forward(x), expected, atol=1e-6)

    def test_backward_before_forward_raises(self, rng):
        mlp = MLP.initialise(4, (8, 3), rng)
        with pytest.raises(RuntimeError):
            mlp.backward(np.zeros((1, 3), np.float32))

    def test_input_gradient_numerically(self, rng):
        mlp = MLP.initialise(3, (5, 2), rng)
        x = rng.standard_normal((4, 3)).astype(np.float32)
        g = rng.standard_normal((4, 2)).astype(np.float32)

        def loss():
            return float((mlp.forward(x) * g).sum())

        mlp.forward(x)
        grad_in = mlp.backward(g)
        numeric = numerical_grad(loss, x)
        assert np.allclose(grad_in, numeric, atol=1e-2)

    def test_parameter_gradients_numerically(self, rng):
        mlp = MLP.initialise(3, (4, 2), rng)
        x = rng.standard_normal((4, 3)).astype(np.float32)
        g = rng.standard_normal((4, 2)).astype(np.float32)

        def loss():
            return float((mlp.forward(x) * g).sum())

        mlp.forward(x)
        mlp.backward(g)
        for layer in mlp.layers:
            numeric_w = numerical_grad(loss, layer.weight)
            assert np.allclose(layer.grad_weight, numeric_w, atol=1e-2)
            numeric_b = numerical_grad(loss, layer.bias)
            assert np.allclose(layer.grad_bias, numeric_b, atol=1e-2)

    def test_step_updates_all_layers(self, rng):
        mlp = MLP.initialise(3, (4, 2), rng)
        x = rng.standard_normal((4, 3)).astype(np.float32)
        mlp.forward(x)
        mlp.backward(np.ones((4, 2), dtype=np.float32))
        before = [layer.weight.copy() for layer in mlp.layers]
        mlp.step(0.1)
        for layer, old in zip(mlp.layers, before):
            assert not np.allclose(layer.weight, old)

    def test_copy_parameters(self, rng):
        a = MLP.initialise(3, (4, 2), np.random.default_rng(0))
        b = MLP.initialise(3, (4, 2), np.random.default_rng(1))
        b.copy_parameters_from(a)
        for la, lb in zip(a.layers, b.layers):
            assert np.array_equal(la.weight, lb.weight)
            assert np.array_equal(la.bias, lb.bias)

    def test_copy_parameters_shape_mismatch(self, rng):
        a = MLP.initialise(3, (4, 2), rng)
        b = MLP.initialise(3, (5, 2), rng)
        with pytest.raises(ValueError):
            b.copy_parameters_from(a)

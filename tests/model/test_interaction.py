"""Tests for the dot feature interaction (repro.model.interaction)."""

import numpy as np
import pytest

from repro.model.interaction import DotInteraction, interaction_output_features


@pytest.fixture
def rng():
    return np.random.default_rng(31)


class TestForward:
    def test_output_width(self, rng):
        inter = DotInteraction()
        bottom = rng.standard_normal((3, 4)).astype(np.float32)
        pooled = rng.standard_normal((3, 2, 4)).astype(np.float32)
        out = inter.forward(bottom, pooled)
        assert out.shape == (3, interaction_output_features(2, 4))

    def test_bottom_passthrough(self, rng):
        inter = DotInteraction()
        bottom = rng.standard_normal((3, 4)).astype(np.float32)
        pooled = rng.standard_normal((3, 2, 4)).astype(np.float32)
        out = inter.forward(bottom, pooled)
        assert np.allclose(out[:, :4], bottom)

    def test_pairwise_dots(self, rng):
        inter = DotInteraction()
        bottom = rng.standard_normal((1, 3)).astype(np.float32)
        pooled = rng.standard_normal((1, 2, 3)).astype(np.float32)
        out = inter.forward(bottom, pooled)
        b, e0, e1 = bottom[0], pooled[0, 0], pooled[0, 1]
        # tril_indices(k=-1) order for n=3: (1,0), (2,0), (2,1).
        assert out[0, 3] == pytest.approx(float(e0 @ b), rel=1e-5)
        assert out[0, 4] == pytest.approx(float(e1 @ b), rel=1e-5)
        assert out[0, 5] == pytest.approx(float(e1 @ e0), rel=1e-5)

    def test_dim_mismatch_rejected(self, rng):
        inter = DotInteraction()
        with pytest.raises(ValueError, match="must equal embedding dim"):
            inter.forward(np.zeros((2, 4), np.float32), np.zeros((2, 2, 5), np.float32))

    def test_rank_validation(self):
        inter = DotInteraction()
        with pytest.raises(ValueError):
            inter.forward(np.zeros((2, 4), np.float32), np.zeros((2, 4), np.float32))


class TestBackward:
    def _numerical(self, f, x, eps=1e-4):
        grad = np.zeros_like(x, dtype=np.float64)
        it = np.nditer(x, flags=["multi_index"])
        while not it.finished:
            idx = it.multi_index
            orig = x[idx]
            x[idx] = orig + eps
            up = f()
            x[idx] = orig - eps
            down = f()
            x[idx] = orig
            grad[idx] = (up - down) / (2 * eps)
            it.iternext()
        return grad

    def test_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            DotInteraction().backward(np.zeros((1, 5), np.float32))

    def test_gradients_numerically(self, rng):
        inter = DotInteraction()
        bottom = rng.standard_normal((2, 3)).astype(np.float32)
        pooled = rng.standard_normal((2, 2, 3)).astype(np.float32)
        g = rng.standard_normal(
            (2, interaction_output_features(2, 3))
        ).astype(np.float32)

        def loss():
            return float((inter.forward(bottom, pooled) * g).sum())

        inter.forward(bottom, pooled)
        grad_bottom, grad_pooled = inter.backward(g)
        assert np.allclose(grad_bottom, self._numerical(loss, bottom), atol=1e-2)
        assert np.allclose(grad_pooled, self._numerical(loss, pooled), atol=1e-2)

    def test_gradient_shapes(self, rng):
        inter = DotInteraction()
        bottom = rng.standard_normal((4, 5)).astype(np.float32)
        pooled = rng.standard_normal((4, 3, 5)).astype(np.float32)
        out = inter.forward(bottom, pooled)
        grad_bottom, grad_pooled = inter.backward(np.ones_like(out))
        assert grad_bottom.shape == bottom.shape
        assert grad_pooled.shape == pooled.shape


class TestOutputFeatures:
    @pytest.mark.parametrize(
        "tables,dim,expected",
        [(1, 4, 4 + 1), (2, 4, 4 + 3), (8, 128, 128 + 36)],
    )
    def test_formula(self, tables, dim, expected):
        assert interaction_output_features(tables, dim) == expected

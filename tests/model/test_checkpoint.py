"""Tests for model checkpointing (repro.model.checkpoint)."""

import numpy as np
import pytest

from repro.data.trace import make_dataset
from repro.model.checkpoint import (
    checkpoint_bytes,
    load_checkpoint,
    save_checkpoint,
)
from repro.model.config import tiny_config
from repro.model.dlrm import DLRMModel


@pytest.fixture
def cfg():
    return tiny_config(rows_per_table=100, batch_size=4, lookups_per_table=2,
                       num_tables=2)


class TestRoundTrip:
    def test_save_load_identity(self, cfg, tmp_path):
        model = DLRMModel.initialise(cfg, seed=3)
        dataset = make_dataset(cfg, "medium", seed=1, num_batches=4,
                               with_dense=True)
        for i in range(4):
            model.train_step(dataset.batch(i))
        path = tmp_path / "ckpt.npz"
        save_checkpoint(path, model)

        restored = DLRMModel.initialise(cfg, seed=99)  # different init
        load_checkpoint(path, restored)
        for a, b in zip(model.tables, restored.tables):
            assert np.array_equal(a.weights, b.weights)
        for mlp_a, mlp_b in (
            (model.dense_network.bottom_mlp, restored.dense_network.bottom_mlp),
            (model.dense_network.top_mlp, restored.dense_network.top_mlp),
        ):
            for la, lb in zip(mlp_a.layers, mlp_b.layers):
                assert np.array_equal(la.weight, lb.weight)
                assert np.array_equal(la.bias, lb.bias)

    def test_restored_model_trains_identically(self, cfg, tmp_path):
        dataset = make_dataset(cfg, "medium", seed=1, num_batches=8,
                               with_dense=True)
        model = DLRMModel.initialise(cfg, seed=3)
        for i in range(4):
            model.train_step(dataset.batch(i))
        path = tmp_path / "ckpt.npz"
        save_checkpoint(path, model)

        restored = DLRMModel.initialise(cfg, seed=99)
        load_checkpoint(path, restored)
        # Continue training both from the checkpoint: identical trajectories.
        for i in range(4, 8):
            assert model.train_step(dataset.batch(i)) == pytest.approx(
                restored.train_step(dataset.batch(i)), abs=0.0
            )


class TestValidation:
    def test_table_count_mismatch(self, cfg, tmp_path):
        model = DLRMModel.initialise(cfg, seed=3)
        path = tmp_path / "ckpt.npz"
        save_checkpoint(path, model)
        other = DLRMModel.initialise(cfg.scaled(num_tables=1), seed=3)
        with pytest.raises(ValueError, match="tables"):
            load_checkpoint(path, other)

    def test_shape_mismatch(self, cfg, tmp_path):
        model = DLRMModel.initialise(cfg, seed=3)
        path = tmp_path / "ckpt.npz"
        save_checkpoint(path, model)
        other = DLRMModel.initialise(cfg.scaled(rows_per_table=50), seed=3)
        with pytest.raises(ValueError, match="shape mismatch"):
            load_checkpoint(path, other)


class TestSize:
    def test_checkpoint_bytes_accounts_everything(self, cfg):
        model = DLRMModel.initialise(cfg, seed=0)
        expected_tables = cfg.num_tables * cfg.rows_per_table * cfg.embedding_dim * 4
        assert checkpoint_bytes(model) > expected_tables

"""Tests for embedding primitives (repro.model.embedding)."""

import numpy as np
import pytest

from repro.model.embedding import (
    EmbeddingTable,
    coalesce_gradients,
    duplicate_gradients,
    gather_rows,
    initialise_tables,
    sgd_scatter,
    sum_pool,
    tables_allclose,
)
from repro.model.config import tiny_config


@pytest.fixture
def rng():
    return np.random.default_rng(5)


class TestGatherAndPool:
    def test_gather_shape(self, rng):
        table = rng.standard_normal((10, 4)).astype(np.float32)
        ids = np.array([[0, 1], [2, 2]])
        assert gather_rows(table, ids).shape == (2, 2, 4)

    def test_gather_values(self, rng):
        table = rng.standard_normal((10, 4)).astype(np.float32)
        out = gather_rows(table, np.array([3, 7]))
        assert np.array_equal(out[0], table[3])
        assert np.array_equal(out[1], table[7])

    def test_sum_pool(self):
        gathered = np.arange(12, dtype=np.float32).reshape(2, 3, 2)
        pooled = sum_pool(gathered)
        assert pooled.shape == (2, 2)
        assert np.array_equal(pooled[0], gathered[0].sum(axis=0))

    def test_sum_pool_rejects_wrong_rank(self):
        with pytest.raises(ValueError):
            sum_pool(np.zeros((2, 3)))

    def test_figure2_example(self):
        # Figure 2(a): batch 0 gathers rows {0, 4}, batch 1 rows {0, 2, 5}.
        table = np.arange(12, dtype=np.float32).reshape(6, 2)
        first = gather_rows(table, np.array([0, 4])).sum(axis=0)
        second = gather_rows(table, np.array([0, 2, 5])).sum(axis=0)
        assert np.array_equal(first, table[0] + table[4])
        assert np.array_equal(second, table[0] + table[2] + table[5])


class TestDuplicate:
    def test_shape_and_values(self):
        pooled = np.array([[1.0, 2.0], [3.0, 4.0]], dtype=np.float32)
        dup = duplicate_gradients(pooled, lookups=3)
        assert dup.shape == (2, 3, 2)
        assert np.array_equal(dup[0, 0], pooled[0])
        assert np.array_equal(dup[1, 2], pooled[1])

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            duplicate_gradients(np.zeros((2, 2)), lookups=0)
        with pytest.raises(ValueError):
            duplicate_gradients(np.zeros(3), lookups=2)


class TestCoalesce:
    def test_unique_ids_sorted(self, rng):
        ids = np.array([5, 1, 5, 3])
        grads = rng.standard_normal((4, 2)).astype(np.float32)
        unique, out = coalesce_gradients(ids, grads)
        assert np.array_equal(unique, [1, 3, 5])
        assert out.shape == (3, 2)

    def test_repeated_ids_summed(self):
        # Figure 2(b): E[0] looked up by both samples -> G[0]+G[1].
        ids = np.array([0, 4, 0, 2, 5])
        grads = np.ones((5, 2), dtype=np.float32)
        grads[2:] *= 2.0  # second sample's gradient
        unique, out = coalesce_gradients(ids, grads)
        assert np.array_equal(unique, [0, 2, 4, 5])
        assert np.array_equal(out[0], [3.0, 3.0])  # 1 + 2
        assert np.array_equal(out[2], [1.0, 1.0])

    def test_mass_conserved(self, rng):
        ids = rng.integers(0, 10, size=50)
        grads = rng.standard_normal((50, 3)).astype(np.float32)
        _, out = coalesce_gradients(ids, grads)
        assert np.allclose(out.sum(axis=0), grads.sum(axis=0), atol=1e-5)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            coalesce_gradients(np.array([1, 2]), np.zeros((3, 2), np.float32))


class TestScatter:
    def test_updates_rows_in_place(self):
        table = np.ones((5, 2), dtype=np.float32)
        sgd_scatter(table, np.array([1, 3]), np.ones((2, 2), np.float32), lr=0.5)
        assert np.array_equal(table[1], [0.5, 0.5])
        assert np.array_equal(table[0], [1.0, 1.0])

    def test_duplicate_ids_rejected(self):
        table = np.ones((5, 2), dtype=np.float32)
        with pytest.raises(ValueError, match="unique"):
            sgd_scatter(table, np.array([1, 1]), np.ones((2, 2), np.float32), 0.1)


class TestEmbeddingTable:
    def test_initialise_shape(self, rng):
        table = EmbeddingTable.initialise(20, 4, rng)
        assert table.num_rows == 20 and table.dim == 4
        assert table.weights.dtype == np.float32

    def test_forward_pools(self, rng):
        table = EmbeddingTable.initialise(20, 4, rng)
        ids = np.array([[0, 1], [2, 3]])
        pooled = table.forward(ids)
        expected = table.weights[ids].sum(axis=1)
        assert np.allclose(pooled, expected)

    def test_forward_rejects_flat_ids(self, rng):
        table = EmbeddingTable.initialise(20, 4, rng)
        with pytest.raises(ValueError):
            table.forward(np.array([1, 2, 3]))

    def test_backward_applies_sgd(self, rng):
        table = EmbeddingTable.initialise(20, 4, rng)
        before = table.weights.copy()
        ids = np.array([[0, 1], [1, 2]])
        grad = np.ones((2, 4), dtype=np.float32)
        unique, coalesced = table.backward(ids, grad, lr=0.1)
        assert np.array_equal(unique, [0, 1, 2])
        # Row 1 appears twice -> gradient 2.0 per element.
        assert np.allclose(table.weights[1], before[1] - 0.1 * 2.0)
        assert np.allclose(table.weights[0], before[0] - 0.1 * 1.0)
        assert np.allclose(coalesced[1], 2.0)

    def test_backward_matches_autodiff_semantics(self, rng):
        # Loss = sum(pooled * g): d(loss)/d(row r) = g * count(r in sample).
        table = EmbeddingTable.initialise(10, 3, rng)
        before = table.weights.copy()
        ids = np.array([[4, 4, 4]])
        grad = np.full((1, 3), 2.0, dtype=np.float32)
        table.backward(ids, grad, lr=1.0)
        assert np.allclose(table.weights[4], before[4] - 3 * 2.0)


class TestHelpers:
    def test_initialise_tables(self, rng):
        cfg = tiny_config(rows_per_table=10)
        tables = initialise_tables(cfg, rng)
        assert len(tables) == cfg.num_tables
        assert all(t.num_rows == 10 for t in tables)

    def test_tables_allclose(self, rng):
        cfg = tiny_config(rows_per_table=10)
        a = initialise_tables(cfg, np.random.default_rng(0))
        b = initialise_tables(cfg, np.random.default_rng(0))
        c = initialise_tables(cfg, np.random.default_rng(1))
        assert tables_allclose(a, b)
        assert not tables_allclose(a, c)
        assert not tables_allclose(a, a[:1])

"""Tests for the BCE loss (repro.model.loss)."""

import numpy as np
import pytest

from repro.model.loss import bce_with_logits, bce_with_logits_grad, sigmoid


class TestSigmoid:
    def test_midpoint(self):
        assert sigmoid(np.array([0.0]))[0] == pytest.approx(0.5)

    def test_symmetry(self):
        z = np.linspace(-5, 5, 11)
        assert np.allclose(sigmoid(z) + sigmoid(-z), 1.0)

    def test_extreme_values_stable(self):
        out = sigmoid(np.array([-1000.0, 1000.0]))
        assert out[0] == pytest.approx(0.0, abs=1e-12)
        assert out[1] == pytest.approx(1.0, abs=1e-12)
        assert np.isfinite(out).all()


class TestBceWithLogits:
    def test_perfect_prediction_low_loss(self):
        logits = np.array([10.0, -10.0])
        labels = np.array([1.0, 0.0])
        assert bce_with_logits(logits, labels) < 1e-3

    def test_wrong_prediction_high_loss(self):
        logits = np.array([10.0])
        labels = np.array([0.0])
        assert bce_with_logits(logits, labels) > 5.0

    def test_chance_level(self):
        logits = np.zeros(4)
        labels = np.array([0.0, 1.0, 0.0, 1.0])
        assert bce_with_logits(logits, labels) == pytest.approx(np.log(2))

    def test_matches_naive_formula(self):
        rng = np.random.default_rng(0)
        logits = rng.standard_normal(32)
        labels = (rng.random(32) < 0.5).astype(np.float64)
        p = 1 / (1 + np.exp(-logits))
        naive = -(labels * np.log(p) + (1 - labels) * np.log(1 - p)).mean()
        assert bce_with_logits(logits, labels) == pytest.approx(naive, rel=1e-6)

    def test_no_overflow_for_large_logits(self):
        loss = bce_with_logits(np.array([1e4, -1e4]), np.array([0.0, 1.0]))
        assert np.isfinite(loss)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            bce_with_logits(np.zeros(3), np.zeros(2))


class TestBceGrad:
    def test_gradient_formula(self):
        logits = np.array([0.0, 2.0], dtype=np.float32)
        labels = np.array([1.0, 0.0], dtype=np.float32)
        grad = bce_with_logits_grad(logits, labels)
        expected = (sigmoid(logits.astype(np.float64)) - labels) / 2
        assert np.allclose(grad, expected, atol=1e-6)

    def test_gradient_numerically(self):
        rng = np.random.default_rng(3)
        logits = rng.standard_normal(8).astype(np.float64)
        labels = (rng.random(8) < 0.5).astype(np.float64)
        grad = bce_with_logits_grad(logits, labels)
        eps = 1e-5
        for i in range(8):
            bumped = logits.copy()
            bumped[i] += eps
            up = bce_with_logits(bumped, labels)
            bumped[i] -= 2 * eps
            down = bce_with_logits(bumped, labels)
            assert grad[i] == pytest.approx((up - down) / (2 * eps), abs=1e-4)

    def test_preserves_shape(self):
        logits = np.zeros((4, 1), dtype=np.float32)
        labels = np.zeros((4, 1), dtype=np.float32)
        assert bce_with_logits_grad(logits, labels).shape == (4, 1)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            bce_with_logits_grad(np.zeros(3), np.zeros(4))

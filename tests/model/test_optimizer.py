"""Tests for the SGD optimiser (repro.model.optimizer)."""

import numpy as np
import pytest

from repro.model.embedding import EmbeddingTable
from repro.model.mlp import MLP
from repro.model.optimizer import SGD


class TestValidation:
    def test_positive_lr_required(self):
        with pytest.raises(ValueError):
            SGD(lr=0.0)
        with pytest.raises(ValueError):
            SGD(lr=-0.1)


class TestDense:
    def test_step_dense_applies_lr(self):
        rng = np.random.default_rng(0)
        mlp = MLP.initialise(3, (2,), rng)
        x = np.ones((1, 3), dtype=np.float32)
        mlp.forward(x)
        mlp.backward(np.ones((1, 2), dtype=np.float32))
        grad = mlp.layers[0].grad_weight.copy()
        before = mlp.layers[0].weight.copy()
        SGD(lr=0.25).step_dense(mlp)
        assert np.allclose(mlp.layers[0].weight, before - 0.25 * grad)


class TestSparse:
    def test_step_sparse_returns_unique(self):
        rng = np.random.default_rng(0)
        table = EmbeddingTable.initialise(10, 2, rng)
        ids = np.array([[1, 1], [3, 5]])
        grad = np.ones((2, 2), dtype=np.float32)
        unique = SGD(lr=0.1).step_sparse(table, ids, grad)
        assert np.array_equal(unique, [1, 3, 5])

    def test_scatter_applies_lr(self):
        weights = np.ones((4, 2), dtype=np.float32)
        SGD(lr=0.5).scatter(
            weights, np.array([2]), np.array([[1.0, 2.0]], dtype=np.float32)
        )
        assert np.allclose(weights[2], [0.5, 0.0])
        assert np.allclose(weights[0], 1.0)

    def test_scatter_empty_noop(self):
        weights = np.ones((4, 2), dtype=np.float32)
        SGD(lr=0.5).scatter(
            weights,
            np.empty(0, dtype=np.int64),
            np.empty((0, 2), dtype=np.float32),
        )
        assert np.allclose(weights, 1.0)

"""Tests for model configuration (repro.model.config)."""

import pytest

from repro.model.config import (
    ELEMENT_BYTES,
    ModelConfig,
    dense_parameter_bytes,
    mlp_flops,
    mlp_params,
    tiny_config,
)


class TestDefaults:
    def test_paper_model_size(self):
        # Section V: 8 tables x 10M entries x 128-dim = ~40 GB.
        cfg = ModelConfig()
        assert cfg.model_bytes == 8 * 10_000_000 * 128 * 4
        assert 40e9 < cfg.model_bytes < 42e9

    def test_paper_lookup_volume(self):
        cfg = ModelConfig()
        assert cfg.lookups_per_batch == 8 * 20 * 2048

    def test_row_bytes(self):
        cfg = ModelConfig()
        assert cfg.row_bytes == 128 * ELEMENT_BYTES

    def test_interaction_features(self):
        cfg = ModelConfig()
        n = cfg.num_tables + 1
        assert cfg.interaction_features == n * (n - 1) // 2 + cfg.embedding_dim

    def test_reduced_bytes(self):
        cfg = ModelConfig()
        assert cfg.reduced_bytes_per_batch == 8 * 2048 * 128 * 4


class TestValidation:
    @pytest.mark.parametrize(
        "field,value",
        [
            ("num_tables", 0),
            ("rows_per_table", 0),
            ("embedding_dim", 0),
            ("lookups_per_table", 0),
            ("batch_size", 0),
        ],
    )
    def test_positive_fields(self, field, value):
        with pytest.raises(ValueError):
            ModelConfig(**{field: value})

    def test_bottom_mlp_must_end_at_dim(self):
        with pytest.raises(ValueError, match="bottom_mlp must end"):
            ModelConfig(bottom_mlp=(512, 64))

    def test_top_mlp_must_end_at_one(self):
        with pytest.raises(ValueError, match="single logit"):
            ModelConfig(top_mlp=(64, 2))

    def test_empty_mlps_rejected(self):
        with pytest.raises(ValueError):
            ModelConfig(bottom_mlp=())


class TestScaled:
    def test_scaled_override(self):
        cfg = ModelConfig().scaled(batch_size=512)
        assert cfg.batch_size == 512
        assert cfg.num_tables == 8

    def test_scaled_revalidates(self):
        with pytest.raises(ValueError):
            ModelConfig().scaled(batch_size=-1)


class TestTinyConfig:
    def test_structurally_valid(self):
        cfg = tiny_config()
        assert cfg.bottom_mlp[-1] == cfg.embedding_dim
        assert cfg.top_mlp[-1] == 1

    def test_factory_overrides(self):
        cfg = tiny_config(rows_per_table=50, batch_size=2)
        assert cfg.rows_per_table == 50
        assert cfg.batch_size == 2

    def test_model_config_overrides(self):
        cfg = tiny_config(num_dense_features=7)
        assert cfg.num_dense_features == 7


class TestMlpHelpers:
    def test_mlp_flops_single_layer(self):
        assert mlp_flops(10, (5,), 2) == 2 * 2 * 10 * 5

    def test_mlp_flops_stacked(self):
        assert mlp_flops(4, (3, 2), 1) == 2 * (4 * 3) + 2 * (3 * 2)

    def test_mlp_params(self):
        assert mlp_params(4, (3, 2)) == (4 * 3 + 3) + (3 * 2 + 2)

    def test_dense_parameter_bytes_positive(self):
        assert dense_parameter_bytes(ModelConfig()) > 1_000_000

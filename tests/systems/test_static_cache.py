"""Tests for the static-cache system (repro.systems.static_cache)."""

import numpy as np
import pytest

from repro.data.trace import make_dataset
from repro.hardware.spec import DEFAULT_HARDWARE
from repro.model.config import ModelConfig, tiny_config
from repro.model.dlrm import DenseNetwork
from repro.model.optimizer import SGD
from repro.systems.static_cache import (
    SplitStats,
    StaticCacheSystem,
    StaticCacheTrainer,
    split_batch,
)


@pytest.fixture
def cfg():
    return tiny_config(rows_per_table=100, batch_size=6, lookups_per_table=2,
                       num_tables=2)


class TestSplitBatch:
    def test_split_partitions_lookups(self, cfg):
        batch = make_dataset(cfg, "high", seed=1, num_batches=1).batch(0)
        split = split_batch(batch, hot_rows=10)
        assert split.total_lookups == cfg.lookups_per_batch
        assert split.hit_lookups + split.miss_lookups == split.total_lookups

    def test_all_hot_when_cache_covers_table(self, cfg):
        batch = make_dataset(cfg, "medium", seed=1, num_batches=1).batch(0)
        split = split_batch(batch, hot_rows=cfg.rows_per_table)
        assert split.miss_lookups == 0
        assert split.hit_rate == 1.0

    def test_all_cold_when_cache_empty(self, cfg):
        batch = make_dataset(cfg, "medium", seed=1, num_batches=1).batch(0)
        split = split_batch(batch, hot_rows=0)
        assert split.hit_lookups == 0

    def test_high_locality_hits_more(self, cfg):
        high = make_dataset(cfg, "high", seed=2, num_batches=1).batch(0)
        low = make_dataset(cfg, "low", seed=2, num_batches=1).batch(0)
        hot = 5
        assert (
            split_batch(high, hot).hit_rate > split_batch(low, hot).hit_rate
        )

    def test_empty_split_hit_rate(self):
        split = SplitStats(hit_lookups=0, miss_lookups=0, hit_unique=0,
                           miss_unique=0)
        assert split.hit_rate == 1.0


class TestStaticCacheSystem:
    def test_fraction_validated(self):
        with pytest.raises(ValueError):
            StaticCacheSystem(ModelConfig(), DEFAULT_HARDWARE, 0.0)
        with pytest.raises(ValueError):
            StaticCacheSystem(ModelConfig(), DEFAULT_HARDWARE, 1.5)

    def test_larger_cache_faster_on_locality(self):
        cfg = ModelConfig()
        big = StaticCacheSystem(cfg, DEFAULT_HARDWARE, 0.10)
        small = StaticCacheSystem(cfg, DEFAULT_HARDWARE, 0.02)
        lookups = cfg.lookups_per_batch
        # High-locality split for the two cache sizes.
        split_small = SplitStats(
            hit_lookups=int(lookups * 0.8), miss_lookups=int(lookups * 0.2),
            hit_unique=1000, miss_unique=int(lookups * 0.2),
        )
        split_big = SplitStats(
            hit_lookups=int(lookups * 0.9), miss_lookups=int(lookups * 0.1),
            hit_unique=1000, miss_unique=int(lookups * 0.1),
        )
        assert (
            big.iteration_breakdown(split_big).total
            < small.iteration_breakdown(split_small).total
        )

    def test_run_trace_faster_on_high_locality(self, cfg):
        system = StaticCacheSystem(cfg, DEFAULT_HARDWARE, 0.10)
        high = make_dataset(cfg, "high", seed=3, num_batches=6)
        low = make_dataset(cfg, "low", seed=3, num_batches=6)
        assert (
            system.run_trace(high).mean_latency(0)
            < system.run_trace(low).mean_latency(0)
        )

    def test_miss_path_runs_on_cpu(self):
        cfg = ModelConfig()
        system = StaticCacheSystem(cfg, DEFAULT_HARDWARE, 0.02)
        lookups = cfg.lookups_per_batch
        all_miss = SplitStats(0, lookups, 0, lookups)
        all_hit = SplitStats(lookups, 0, lookups // 4, 0)
        assert (
            system.iteration_breakdown(all_miss).total
            > 3 * system.iteration_breakdown(all_hit).total
        )


class TestStaticCacheTrainer:
    def test_hot_rows_validated(self, cfg):
        rng = np.random.default_rng(0)
        tables = [
            rng.standard_normal((cfg.rows_per_table, cfg.embedding_dim)).astype(
                np.float32
            )
            for _ in range(cfg.num_tables)
        ]
        dense = DenseNetwork.initialise(cfg, rng)
        with pytest.raises(ValueError):
            StaticCacheTrainer(
                config=cfg, cpu_tables=tables, hot_rows=-1, dense_network=dense
            )

    def test_updates_split_by_placement(self, cfg):
        rng = np.random.default_rng(0)
        tables = [
            rng.standard_normal((cfg.rows_per_table, cfg.embedding_dim)).astype(
                np.float32
            )
            for _ in range(cfg.num_tables)
        ]
        originals = [t.copy() for t in tables]
        dense = DenseNetwork.initialise(cfg, rng)
        trainer = StaticCacheTrainer(
            config=cfg, cpu_tables=tables, hot_rows=20, dense_network=dense,
            optimizer=SGD(lr=0.1),
        )
        dataset = make_dataset(cfg, "high", seed=4, num_batches=3,
                               with_dense=True)
        for i in range(3):
            loss = trainer.train_batch(dataset.batch(i))
            assert np.isfinite(loss)
        # CPU copies of hot rows must be untouched (stale); training went to
        # the GPU cache.
        for t in range(cfg.num_tables):
            assert np.array_equal(tables[t][:20], originals[t][:20])
        merged = trainer.merged_tables()
        touched_hot = any(
            not np.array_equal(merged[t][:20], originals[t][:20])
            for t in range(cfg.num_tables)
        )
        assert touched_hot

"""Tests for the software-pipelined hybrid (repro.systems.overlapped_hybrid).

The quantitative version of the paper's related-work argument: overlapping
CPU and GPU work (prior art [33]-[38]) recovers only the GPU-side time,
while ScratchPipe's relocation of the embedding work wins several-fold.
"""

import pytest

from repro.data.trace import MaterialisedDataset, make_dataset
from repro.hardware.spec import DEFAULT_HARDWARE
from repro.model.config import ModelConfig
from repro.systems.base import batch_access_stats
from repro.systems.hybrid import HybridSystem
from repro.systems.overlapped_hybrid import OverlappedHybridSystem
from repro.systems.scratchpipe_system import ScratchPipeSystem


@pytest.fixture(scope="module")
def trace():
    return MaterialisedDataset(
        make_dataset(ModelConfig(), "medium", seed=6, num_batches=12)
    )


@pytest.fixture(scope="module")
def config():
    return ModelConfig()


class TestOverlappedHybrid:
    def test_faster_than_sequential_hybrid(self, config, trace):
        sequential = HybridSystem(config, DEFAULT_HARDWARE).run_trace(trace)
        overlapped = OverlappedHybridSystem(config, DEFAULT_HARDWARE).run_trace(trace)
        assert overlapped.mean_latency(0) < sequential.mean_latency(0)

    def test_overlap_gain_is_modest(self, config, trace):
        """The paper's argument: the baseline is CPU-bound, so overlap
        recovers only the small GPU share — well under 1.5x."""
        sequential = HybridSystem(config, DEFAULT_HARDWARE).run_trace(trace)
        overlapped = OverlappedHybridSystem(config, DEFAULT_HARDWARE).run_trace(trace)
        gain = sequential.mean_latency(0) / overlapped.mean_latency(0)
        assert 1.0 < gain < 1.5

    def test_scratchpipe_still_wins_by_far(self, config, trace):
        """Relocation beats scheduling: ScratchPipe outruns the overlapped
        hybrid severalfold."""
        overlapped = OverlappedHybridSystem(config, DEFAULT_HARDWARE).run_trace(trace)
        scratchpipe = ScratchPipeSystem(config, DEFAULT_HARDWARE, 0.02).run_trace(trace)
        ratio = overlapped.mean_latency(0) / scratchpipe.mean_latency(8)
        assert ratio > 2.5

    def test_cycle_bounded_below_by_dense(self, config, trace):
        """An MLP-dominated model flips the bottleneck to the GPU side."""
        system = OverlappedHybridSystem(config, DEFAULT_HARDWARE)
        stats = batch_access_stats(trace.batch(0))
        tiny_embedding = type(stats)(total_lookups=10, unique_rows=10)
        cycle = system.steady_cycle_seconds(tiny_embedding)
        assert cycle >= system.cost.dense_train("gpu")

    def test_cycle_below_stage_sum(self, config, trace):
        system = OverlappedHybridSystem(config, DEFAULT_HARDWARE)
        stats = batch_access_stats(trace.batch(0))
        assert (
            system.steady_cycle_seconds(stats)
            < system.iteration_breakdown(stats).total
        )

    def test_energy_counts_both_devices(self, config, trace):
        result = OverlappedHybridSystem(config, DEFAULT_HARDWARE).run_trace(trace)
        power = DEFAULT_HARDWARE.power
        both_active = power.cpu_active_w + power.gpu_active_w
        for seconds, joules in zip(result.iteration_times, result.energies):
            assert joules == pytest.approx(seconds * both_active)

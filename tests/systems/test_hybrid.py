"""Tests for the hybrid CPU-GPU baseline system (repro.systems.hybrid)."""

import pytest

from repro.data.trace import make_dataset
from repro.hardware.spec import DEFAULT_HARDWARE
from repro.model.config import ModelConfig, tiny_config
from repro.systems.base import (
    CPU_EMB_BACKWARD,
    CPU_EMB_FORWARD,
    GPU_GROUP,
    BatchAccessStats,
)
from repro.systems.hybrid import HybridSystem


@pytest.fixture
def system():
    return HybridSystem(ModelConfig(), DEFAULT_HARDWARE)


@pytest.fixture
def stats():
    cfg = ModelConfig()
    return BatchAccessStats(
        total_lookups=cfg.lookups_per_batch,
        unique_rows=int(cfg.lookups_per_batch * 0.95),
    )


class TestBreakdown:
    def test_all_groups_present(self, system, stats):
        groups = system.iteration_breakdown(stats).by_group()
        assert set(groups) == {CPU_EMB_FORWARD, CPU_EMB_BACKWARD, GPU_GROUP}

    def test_cpu_dominates(self, system, stats):
        # Figure 5: the hybrid baseline spends most time in CPU-side
        # embedding training.
        groups = system.iteration_breakdown(stats).by_group()
        cpu = groups[CPU_EMB_FORWARD] + groups[CPU_EMB_BACKWARD]
        assert cpu > 3 * groups[GPU_GROUP]

    def test_backward_heavier_than_forward(self, system, stats):
        groups = system.iteration_breakdown(stats).by_group()
        assert groups[CPU_EMB_BACKWARD] > groups[CPU_EMB_FORWARD]

    def test_total_in_paper_range(self, system, stats):
        # ~150-200 ms per iteration (Figure 5's y-axis).
        assert 0.120 < system.iteration_breakdown(stats).total < 0.260


class TestRunTrace:
    def test_laptop_scale_run(self):
        cfg = tiny_config(rows_per_table=100, batch_size=4,
                          lookups_per_table=2, num_tables=2)
        system = HybridSystem(cfg, DEFAULT_HARDWARE)
        dataset = make_dataset(cfg, "medium", seed=1, num_batches=5)
        result = system.run_trace(dataset)
        assert len(result.iteration_times) == 5
        assert all(t > 0 for t in result.iteration_times)
        assert all(e > 0 for e in result.energies)

    def test_locality_insensitive_forward(self):
        # The no-cache baseline gathers every lookup from CPU regardless of
        # locality; only the scatter's unique-row count varies.
        cfg = ModelConfig()
        system = HybridSystem(cfg, DEFAULT_HARDWARE)
        high = BatchAccessStats(cfg.lookups_per_batch, cfg.lookups_per_batch // 4)
        rand = BatchAccessStats(cfg.lookups_per_batch, cfg.lookups_per_batch)
        fwd_high = system.iteration_breakdown(high).by_group()[CPU_EMB_FORWARD]
        fwd_rand = system.iteration_breakdown(rand).by_group()[CPU_EMB_FORWARD]
        assert fwd_high == pytest.approx(fwd_rand)
        total_high = system.iteration_breakdown(high).total
        total_rand = system.iteration_breakdown(rand).total
        assert total_high < total_rand

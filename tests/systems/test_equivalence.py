"""Algorithmic-equivalence integration tests — the paper's central claim.

"ScratchPipe does not change the algorithmic properties of RecSys training
and provides identical training accuracy vs. the original training algorithm
executed over baseline hybrid CPU-GPU" (Section II-D / VI).  We verify the
strongest version of that claim: *bit-identical* final parameters after
training the same trace from the same initialisation through

* the sequential reference (tables in one memory space),
* the static-cache split-placement trainer,
* the straw-man sequential dynamic cache, and
* the fully pipelined ScratchPipe with six batches in flight.
"""

import numpy as np
import pytest

from repro.core.pipeline import HazardMonitor
from repro.core.scratchpad import required_slots
from repro.core.strawman import StrawmanCache, make_strawman_scratchpads
from repro.data.trace import make_dataset
from repro.model.config import tiny_config
from repro.model.dlrm import DLRMModel, DenseNetwork
from repro.model.optimizer import SGD
from repro.systems.scratchpipe_system import (
    ScratchPipeTrainer,
    ScratchPipeTrainingRun,
)
from repro.systems.static_cache import StaticCacheTrainer

NUM_BATCHES = 18


def build_cfg(**overrides):
    defaults = dict(
        rows_per_table=400, batch_size=8, lookups_per_table=3, num_tables=2
    )
    defaults.update(overrides)
    return tiny_config(**defaults)


def train_reference(cfg, dataset, seed, lr=0.01):
    model = DLRMModel.initialise(cfg, seed=seed, optimizer=SGD(lr=lr))
    losses = [model.train_step(dataset.batch(i)) for i in range(len(dataset))]
    return model, losses


def cloned_dense(cfg, reference_model):
    dense = DenseNetwork.initialise(cfg, np.random.default_rng(0))
    ref_init = DLRMModel.initialise(cfg, seed=reference_model)
    dense.copy_parameters_from(ref_init.dense_network)
    return dense, [t.weights.copy() for t in ref_init.tables]


def dense_params_equal(a: DenseNetwork, b: DenseNetwork) -> bool:
    for mlp_a, mlp_b in (
        (a.bottom_mlp, b.bottom_mlp),
        (a.top_mlp, b.top_mlp),
    ):
        for la, lb in zip(mlp_a.layers, mlp_b.layers):
            if not np.array_equal(la.weight, lb.weight):
                return False
            if not np.array_equal(la.bias, lb.bias):
                return False
    return True


class TestScratchPipeEquivalence:
    @pytest.mark.parametrize("locality", ["random", "low", "high"])
    def test_bit_identical_tables_and_dense(self, locality):
        cfg = build_cfg()
        dataset = make_dataset(
            cfg, locality, seed=13, num_batches=NUM_BATCHES, with_dense=True
        )
        reference, ref_losses = train_reference(cfg, dataset, seed=77)

        dense, cpu_tables = cloned_dense(cfg, 77)
        run = ScratchPipeTrainingRun(
            config=cfg,
            cpu_tables=cpu_tables,
            dense_network=dense,
            num_slots=required_slots(cfg),
            optimizer=SGD(lr=0.01),
            monitor=HazardMonitor(strict=True),
        )
        result = run.run(dataset)

        final = run.final_tables()
        for t in range(cfg.num_tables):
            assert np.array_equal(final[t], reference.tables[t].weights)
        assert dense_params_equal(dense, reference.dense_network)
        assert np.allclose(result.losses, ref_losses, rtol=0, atol=0)

    def test_equivalence_with_small_cache(self):
        # Minimum hazard-free capacity: constant eviction traffic, still
        # bit-identical.
        cfg = build_cfg()
        dataset = make_dataset(
            cfg, "medium", seed=5, num_batches=NUM_BATCHES, with_dense=True
        )
        reference, _ = train_reference(cfg, dataset, seed=31)
        dense, cpu_tables = cloned_dense(cfg, 31)
        run = ScratchPipeTrainingRun(
            config=cfg,
            cpu_tables=cpu_tables,
            dense_network=dense,
            num_slots=required_slots(cfg, window_batches=6),
            optimizer=SGD(lr=0.01),
            monitor=HazardMonitor(strict=True),
        )
        run.run(dataset)
        final = run.final_tables()
        for t in range(cfg.num_tables):
            assert np.array_equal(final[t], reference.tables[t].weights)

    @pytest.mark.parametrize("policy", ["lru", "lfu", "random"])
    def test_equivalence_independent_of_policy(self, policy):
        # Section VI-E: the replacement policy affects performance, never
        # correctness.
        cfg = build_cfg()
        dataset = make_dataset(
            cfg, "medium", seed=3, num_batches=12, with_dense=True
        )
        reference, _ = train_reference(cfg, dataset, seed=8)
        dense, cpu_tables = cloned_dense(cfg, 8)
        run = ScratchPipeTrainingRun(
            config=cfg,
            cpu_tables=cpu_tables,
            dense_network=dense,
            num_slots=required_slots(cfg),
            optimizer=SGD(lr=0.01),
            policy_name=policy,
            monitor=HazardMonitor(strict=True),
        )
        run.run(dataset)
        final = run.final_tables()
        for t in range(cfg.num_tables):
            assert np.array_equal(final[t], reference.tables[t].weights)


class TestStaticCacheEquivalence:
    def test_bit_identical_after_merge(self):
        cfg = build_cfg()
        dataset = make_dataset(
            cfg, "high", seed=21, num_batches=NUM_BATCHES, with_dense=True
        )
        reference, ref_losses = train_reference(cfg, dataset, seed=55)
        dense, cpu_tables = cloned_dense(cfg, 55)
        trainer = StaticCacheTrainer(
            config=cfg,
            cpu_tables=cpu_tables,
            hot_rows=40,
            dense_network=dense,
            optimizer=SGD(lr=0.01),
        )
        losses = [trainer.train_batch(dataset.batch(i))
                  for i in range(NUM_BATCHES)]
        merged = trainer.merged_tables()
        for t in range(cfg.num_tables):
            assert np.array_equal(merged[t], reference.tables[t].weights)
        assert dense_params_equal(dense, reference.dense_network)
        assert np.allclose(losses, ref_losses, rtol=0, atol=0)


class TestStrawmanEquivalence:
    def test_bit_identical_tables(self):
        cfg = build_cfg()
        dataset = make_dataset(
            cfg, "medium", seed=41, num_batches=NUM_BATCHES, with_dense=True
        )
        reference, ref_losses = train_reference(cfg, dataset, seed=9)
        dense, cpu_tables = cloned_dense(cfg, 9)
        trainer = ScratchPipeTrainer(
            config=cfg, dense_network=dense, optimizer=SGD(lr=0.01)
        )
        cache = StrawmanCache(
            config=cfg,
            scratchpads=make_strawman_scratchpads(
                cfg, num_slots=required_slots(cfg, window_batches=2),
                with_storage=True,
            ),
            cpu_tables=cpu_tables,
            trainer=trainer,
        )
        cache.run(dataset)
        # Merge cached rows over the CPU master.
        for t, pad in enumerate(cache.scratchpads):
            keys = pad.hit_map.keys()
            slots = pad.hit_map.slots_of_keys(keys)
            cpu_tables[t][keys] = pad.storage[slots]
        for t in range(cfg.num_tables):
            assert np.array_equal(cpu_tables[t], reference.tables[t].weights)
        assert np.allclose(cache.losses, ref_losses, rtol=0, atol=0)

"""Tests for the straw-man system (repro.systems.strawman_system)."""

import pytest

from repro.data.trace import MaterialisedDataset, make_dataset
from repro.hardware.spec import DEFAULT_HARDWARE
from repro.model.config import ModelConfig, tiny_config
from repro.systems.hybrid import HybridSystem
from repro.systems.stages import CACHE_STAGES
from repro.systems.strawman_system import StrawmanSystem


@pytest.fixture
def cfg():
    return tiny_config(rows_per_table=300, batch_size=6, lookups_per_table=2,
                       num_tables=2)


class TestStrawmanSystem:
    def test_fraction_validated(self):
        with pytest.raises(ValueError):
            StrawmanSystem(ModelConfig(), DEFAULT_HARDWARE, -0.1)

    def test_iteration_is_stage_sum(self, cfg):
        system = StrawmanSystem(cfg, DEFAULT_HARDWARE, 0.2)
        dataset = make_dataset(cfg, "medium", seed=2, num_batches=10)
        result = system.run_trace(dataset)
        for breakdown, time in zip(result.breakdowns, result.iteration_times):
            assert time == pytest.approx(breakdown.total)

    def test_stage_names(self, cfg):
        system = StrawmanSystem(cfg, DEFAULT_HARDWARE, 0.2)
        dataset = make_dataset(cfg, "medium", seed=2, num_batches=10)
        result = system.run_trace(dataset)
        assert set(result.stage_means(warmup=0)) == set(CACHE_STAGES)

    def test_beats_hybrid_baseline_at_scale(self):
        # Figure 13: even without pipelining, dynamic caching helps by
        # filtering gradient scatters away from CPU memory.
        config = ModelConfig()
        trace = MaterialisedDataset(
            make_dataset(config, "medium", seed=2, num_batches=12)
        )
        strawman = StrawmanSystem(config, DEFAULT_HARDWARE, 0.02)
        hybrid = HybridSystem(config, DEFAULT_HARDWARE)
        assert (
            strawman.run_trace(trace).mean_latency(8)
            < hybrid.run_trace(trace).mean_latency(0)
        )

"""Tests for the multi-GPU baseline (repro.systems.multigpu)."""

import pytest

from repro.data.trace import make_dataset
from repro.hardware.spec import DEFAULT_HARDWARE
from repro.model.config import ModelConfig
from repro.systems.base import BatchAccessStats
from repro.systems.multigpu import MultiGpuSystem


@pytest.fixture
def system():
    return MultiGpuSystem(ModelConfig(), DEFAULT_HARDWARE, num_gpus=8)


class TestMultiGpuSystem:
    def test_gpu_count_validated(self):
        with pytest.raises(ValueError):
            MultiGpuSystem(ModelConfig(), DEFAULT_HARDWARE, num_gpus=0)

    def test_iteration_in_table1_range(self, system):
        # Table I: 16-19 ms for the 8-GPU system.
        cfg = ModelConfig()
        stats = BatchAccessStats(cfg.lookups_per_batch, cfg.lookups_per_batch)
        total = system.iteration_breakdown(stats).total
        assert 0.012 < total < 0.026

    def test_high_duplication_slower(self, system):
        # Table I: the 8-GPU system is mildly slower on high-locality
        # datasets (hot-row contention in the gradient scatter).
        cfg = ModelConfig()
        random_stats = BatchAccessStats(cfg.lookups_per_batch,
                                        cfg.lookups_per_batch)
        hot_stats = BatchAccessStats(cfg.lookups_per_batch,
                                     cfg.lookups_per_batch // 4)
        assert (
            system.iteration_breakdown(hot_stats).total
            > system.iteration_breakdown(random_stats).total
        )

    def test_dense_dominates(self, system):
        # Section VI-G: embeddings at HBM speed leave the dense network as
        # the bottleneck, which data parallelism barely improves.
        cfg = ModelConfig()
        stats = BatchAccessStats(cfg.lookups_per_batch, cfg.lookups_per_batch)
        by_stage = system.iteration_breakdown(stats).by_stage()
        assert by_stage["dense_train"] > 0.5 * sum(by_stage.values())

    def test_run_trace_energy_scales_with_gpus(self):
        cfg = ModelConfig()
        dataset = make_dataset(cfg, "random", seed=1, num_batches=4)
        one = MultiGpuSystem(cfg, DEFAULT_HARDWARE, num_gpus=1)
        eight = MultiGpuSystem(cfg, DEFAULT_HARDWARE, num_gpus=8)
        e1 = one.run_trace(dataset).mean_energy(warmup=0)
        e8 = eight.run_trace(dataset).mean_energy(warmup=0)
        # 8 GPUs burn more Joules per second; per-iteration time also
        # changes, so just assert the energy is substantially larger.
        assert e8 > 2 * e1 * (
            eight.run_trace(dataset).mean_latency(0)
            / one.run_trace(dataset).mean_latency(0)
        )

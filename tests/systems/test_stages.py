"""Tests for the shared cache-stage pricing (repro.systems.stages)."""

import pytest

from repro.core.pipeline import BatchCacheStats
from repro.hardware.timing import CostModel
from repro.systems.stages import (
    CACHE_STAGES,
    cache_stage_times,
    collect_time,
    exchange_time,
    insert_time,
    plan_time,
    train_time,
)


@pytest.fixture
def cost():
    return CostModel()


def stats(lookups=327_680, unique=300_000, misses=40_000, writebacks=40_000):
    return BatchCacheStats(
        batch_index=0,
        total_lookups=lookups,
        unique_ids=unique,
        hits=unique - misses,
        misses=misses,
        writebacks=writebacks,
        per_table_misses=(misses,),
    )


class TestStagePricing:
    def test_all_stages_priced(self, cost):
        times = cache_stage_times(cost, stats(), future_window=2)
        assert set(times) == set(CACHE_STAGES)
        assert all(t.seconds > 0 for t in times.values())

    def test_collect_is_cpu_bound(self, cost):
        # The CPU read of missed rows dwarfs the GPU victim read, so the
        # stage time equals the CPU side.
        s = stats()
        assert collect_time(cost, s) == pytest.approx(
            cost.cpu_table_read(s.misses)
        )

    def test_collect_scales_with_misses(self, cost):
        few = stats(misses=1_000)
        many = stats(misses=100_000)
        assert collect_time(cost, many) > 10 * collect_time(cost, few)

    def test_exchange_full_duplex(self, cost):
        s = stats(misses=50_000, writebacks=10_000)
        # Dominated by the larger direction.
        assert exchange_time(cost, s) == pytest.approx(
            cost.row_transfer(50_000), rel=0.01
        )

    def test_insert_cheaper_than_collect(self, cost):
        # Write-combining makes the write-back side cheaper than the
        # latency-bound gather side (Figure 12(b)'s Insert < Collect).
        s = stats()
        assert insert_time(cost, s) < collect_time(cost, s)

    def test_plan_scales_with_future_window(self, cost):
        s = stats()
        assert plan_time(cost, s, 4) > plan_time(cost, s, 0)

    def test_train_includes_dense(self, cost):
        s = stats()
        assert train_time(cost, s) > cost.dense_train("gpu")

    def test_zero_miss_batch(self, cost):
        s = stats(misses=0, writebacks=0)
        assert collect_time(cost, s) == 0.0
        assert exchange_time(cost, s) == 0.0
        assert insert_time(cost, s) == 0.0
        # Plan and Train still run.
        assert plan_time(cost, s, 2) > 0
        assert train_time(cost, s) > 0

    def test_train_is_gpu_stage(self, cost):
        times = cache_stage_times(cost, stats(), future_window=2)
        assert times["train"].busy == ("gpu",)
        assert set(times["collect"].busy) == {"cpu", "gpu"}

"""Tests for the ScratchPipe system (repro.systems.scratchpipe_system)."""

import numpy as np
import pytest

from repro.data.trace import make_dataset
from repro.hardware.spec import DEFAULT_HARDWARE
from repro.model.config import ModelConfig, tiny_config
from repro.systems.scratchpipe_system import ScratchPipeSystem, make_scratchpads
from repro.systems.stages import CACHE_STAGES
from repro.systems.strawman_system import StrawmanSystem


@pytest.fixture
def cfg():
    return tiny_config(rows_per_table=300, batch_size=6, lookups_per_table=2,
                       num_tables=2)


class TestConstruction:
    def test_fraction_validated(self):
        with pytest.raises(ValueError):
            ScratchPipeSystem(ModelConfig(), DEFAULT_HARDWARE, 0.0)

    def test_make_scratchpads(self, cfg):
        pads = make_scratchpads(cfg, 16)
        assert len(pads) == cfg.num_tables
        assert all(p.past_window == 3 for p in pads)


class TestTiming:
    def test_stage_means_cover_pipeline(self, cfg):
        system = ScratchPipeSystem(cfg, DEFAULT_HARDWARE, 0.2)
        dataset = make_dataset(cfg, "medium", seed=1, num_batches=16)
        result = system.run_trace(dataset)
        means = result.stage_means(warmup=8)
        assert set(means) == set(CACHE_STAGES)

    def test_pipelined_iteration_below_stage_sum(self):
        # The whole point of pipelining: the iteration time approaches the
        # slowest stage, not the sum of all stages.  (Needs full-scale stage
        # latencies — at toy scale the per-cycle sync overhead dominates.)
        config = ModelConfig()
        system = ScratchPipeSystem(config, DEFAULT_HARDWARE, 0.02)
        dataset = make_dataset(config, "medium", seed=1, num_batches=12)
        result = system.run_trace(dataset)
        stage_sum = result.breakdowns[-1].total
        assert result.mean_latency(warmup=8) < 0.6 * stage_sum

    def test_faster_than_strawman(self):
        config = ModelConfig()
        dataset = make_dataset(config, "medium", seed=1, num_batches=12)
        from repro.data.trace import MaterialisedDataset

        trace = MaterialisedDataset(dataset)
        pipelined = ScratchPipeSystem(config, DEFAULT_HARDWARE, 0.02)
        sequential = StrawmanSystem(config, DEFAULT_HARDWARE, 0.02)
        assert (
            pipelined.run_trace(trace).mean_latency(8)
            < sequential.run_trace(trace).mean_latency(8)
        )

    def test_full_scale_latency_in_paper_range(self):
        # Table I: ScratchPipe iteration times are 26-48 ms across the four
        # locality classes at 2% cache.
        config = ModelConfig()
        for locality, bounds in {
            "random": (0.030, 0.060),
            "high": (0.012, 0.035),
        }.items():
            dataset = make_dataset(config, locality, seed=1, num_batches=14)
            system = ScratchPipeSystem(config, DEFAULT_HARDWARE, 0.02)
            latency = system.run_trace(dataset).mean_latency(8)
            assert bounds[0] < latency < bounds[1], (locality, latency)

    def test_energy_positive(self, cfg):
        system = ScratchPipeSystem(cfg, DEFAULT_HARDWARE, 0.2)
        dataset = make_dataset(cfg, "medium", seed=1, num_batches=12)
        result = system.run_trace(dataset)
        assert result.mean_energy(warmup=8) > 0


class TestCacheSimulation:
    def test_simulate_cache_returns_stats(self, cfg):
        system = ScratchPipeSystem(cfg, DEFAULT_HARDWARE, 0.2)
        dataset = make_dataset(cfg, "high", seed=1, num_batches=12)
        stats = system.simulate_cache(dataset)
        assert len(stats) == 12
        # Dynamic cache warms up: later batches hit.
        assert np.mean([s.hit_rate for s in stats[6:]]) > 0.2

    def test_policy_affects_behaviour(self, cfg):
        dataset = make_dataset(cfg, "high", seed=1, num_batches=12)
        lru = ScratchPipeSystem(cfg, DEFAULT_HARDWARE, 0.3, policy_name="lru")
        rnd = ScratchPipeSystem(
            cfg, DEFAULT_HARDWARE, 0.3, policy_name="random"
        )
        lru_stats = lru.simulate_cache(dataset)
        rnd_stats = rnd.simulate_cache(dataset)
        # Both valid runs; totals conserved.
        for stats in (lru_stats, rnd_stats):
            assert all(s.hits + s.misses == s.unique_ids for s in stats)


class TestTrainerPlanInvariant:
    def test_mismatched_plan_raises(self):
        """Training a batch against another batch's plan must fail loudly
        (the gradient scatter would otherwise hit the wrong Storage rows)."""
        from repro.model.dlrm import DenseNetwork
        from repro.systems.scratchpipe_system import ScratchPipeTrainer

        cfg = tiny_config(rows_per_table=50, batch_size=2,
                          lookups_per_table=2, num_tables=1)
        pad = make_scratchpads(cfg, num_slots=32, with_storage=True)[0]
        # Plan covers IDs {1, 2, 3, 4}; the trained batch gathers only
        # {1, 2}, so every gather resolves but the coalesced gradient IDs
        # differ from the plan's unique_ids.
        plan = pad.plan_batch(np.array([1, 2, 3, 4]))
        from repro.data.trace import MiniBatch

        batch = MiniBatch(
            index=0,
            sparse_ids=np.array([[[1, 2], [1, 2]]], dtype=np.int64),
            dense=np.zeros((2, cfg.num_dense_features), dtype=np.float32),
            labels=np.zeros(2, dtype=np.float32),
        )
        trainer = ScratchPipeTrainer(
            config=cfg,
            dense_network=DenseNetwork.initialise(
                cfg, np.random.default_rng(0)
            ),
        )
        with pytest.raises(AssertionError, match="plan/batch mismatch"):
            trainer.train(batch, [plan], [pad])

    def test_matching_plan_trains(self):
        from repro.model.dlrm import DenseNetwork
        from repro.data.trace import MiniBatch
        from repro.systems.scratchpipe_system import ScratchPipeTrainer

        cfg = tiny_config(rows_per_table=50, batch_size=2,
                          lookups_per_table=2, num_tables=1)
        pad = make_scratchpads(cfg, num_slots=32, with_storage=True)[0]
        sparse_ids = np.array([[[1, 2], [3, 4]]], dtype=np.int64)
        plan = pad.plan_batch(sparse_ids[0].reshape(-1))
        batch = MiniBatch(
            index=0,
            sparse_ids=sparse_ids,
            dense=np.zeros((2, cfg.num_dense_features), dtype=np.float32),
            labels=np.zeros(2, dtype=np.float32),
        )
        trainer = ScratchPipeTrainer(
            config=cfg,
            dense_network=DenseNetwork.initialise(
                cfg, np.random.default_rng(0)
            ),
        )
        loss = trainer.train(batch, [plan], [pad])
        assert np.isfinite(loss)

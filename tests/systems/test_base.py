"""Tests for system-layer shared infrastructure (repro.systems.base)."""

import numpy as np
import pytest

from repro.data.trace import make_dataset
from repro.hardware.energy import CPU, GPU, EnergyModel
from repro.model.config import tiny_config
from repro.systems.base import (
    BatchAccessStats,
    InsufficientSteadyStateError,
    IterationBreakdown,
    StageTime,
    SystemRunResult,
    batch_access_stats,
    cpu_stage,
    gpu_stage,
    transfer_stage,
)


class TestStageTime:
    def test_helpers_set_busy_devices(self):
        assert cpu_stage("a", "g", 1.0).busy == (CPU,)
        assert gpu_stage("a", "g", 1.0).busy == (GPU,)
        assert transfer_stage("a", "g", 1.0).busy == (CPU, GPU)

    def test_energy_slice(self):
        stage = cpu_stage("a", "g", 2.0)
        piece = stage.energy_slice()
        assert piece.seconds == 2.0
        assert piece.busy == (CPU,)


class TestIterationBreakdown:
    @pytest.fixture
    def breakdown(self):
        return IterationBreakdown(
            stages=(
                cpu_stage("gather", "fwd", 0.010),
                cpu_stage("reduce", "fwd", 0.002),
                gpu_stage("dense", "gpu", 0.005),
            )
        )

    def test_total(self, breakdown):
        assert breakdown.total == pytest.approx(0.017)

    def test_by_group(self, breakdown):
        groups = breakdown.by_group()
        assert groups == {"fwd": pytest.approx(0.012), "gpu": pytest.approx(0.005)}

    def test_by_stage(self, breakdown):
        assert breakdown.by_stage()["gather"] == pytest.approx(0.010)

    def test_sequential_energy_positive(self, breakdown):
        assert breakdown.sequential_energy(EnergyModel()) > 0


class TestSystemRunResult:
    def test_mean_latency_skips_warmup(self):
        result = SystemRunResult(system="x", iteration_times=[10.0] * 3 + [1.0] * 5)
        assert result.mean_latency(warmup=3) == pytest.approx(1.0)

    def test_short_run_raises_named_error(self):
        # Regression: a 5-iteration run with warmup=6 used to silently
        # return the warmup-contaminated full-series mean (here 10.0
        # instead of a steady-state value) — it must raise instead.
        result = SystemRunResult(
            system="x", iteration_times=[22.0, 12.0, 8.0, 4.0, 4.0]
        )
        with pytest.raises(InsufficientSteadyStateError, match="warmup=6"):
            result.mean_latency(warmup=6)

    def test_short_run_error_is_a_value_error(self):
        result = SystemRunResult(system="x", iteration_times=[2.0, 4.0])
        with pytest.raises(ValueError):
            result.mean_latency(warmup=6)

    def test_allow_short_opts_back_in_with_warning(self):
        result = SystemRunResult(system="x", iteration_times=[2.0, 4.0])
        with pytest.warns(RuntimeWarning, match="include warm-up"):
            value = result.mean_latency(warmup=6, allow_short=True)
        assert value == pytest.approx(3.0)

    def test_short_run_raises_for_every_reduction(self):
        result = SystemRunResult(
            system="x",
            iteration_times=[1.0, 2.0],
            energies=[5.0, 6.0],
            breakdowns=[
                IterationBreakdown(stages=(cpu_stage("a", "g", t),))
                for t in (1.0, 2.0)
            ],
        )
        for reduction in (result.mean_latency, result.mean_energy,
                          result.stage_means, result.group_means):
            with pytest.raises(InsufficientSteadyStateError):
                reduction(warmup=2)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            SystemRunResult(system="x").mean_latency()

    def test_empty_raises_even_with_allow_short(self):
        with pytest.raises(InsufficientSteadyStateError):
            SystemRunResult(system="x").mean_latency(allow_short=True)

    def test_stage_means(self):
        result = SystemRunResult(
            system="x",
            breakdowns=[
                IterationBreakdown(stages=(cpu_stage("a", "g", t),))
                for t in (1.0, 3.0)
            ],
        )
        assert result.stage_means(warmup=0)["a"] == pytest.approx(2.0)


class TestBatchAccessStats:
    def test_counts(self):
        cfg = tiny_config(rows_per_table=50, batch_size=4, lookups_per_table=2,
                          num_tables=2)
        batch = make_dataset(cfg, "high", seed=1, num_batches=1).batch(0)
        stats = batch_access_stats(batch)
        assert stats.total_lookups == 2 * 4 * 2
        assert 1 <= stats.unique_rows <= stats.total_lookups

    def test_duplication_factor(self):
        stats = BatchAccessStats(total_lookups=20, unique_rows=5)
        assert stats.duplication_factor == 4.0
        empty = BatchAccessStats(total_lookups=0, unique_rows=0)
        assert empty.duplication_factor == 1.0

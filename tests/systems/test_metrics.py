"""Tests for throughput metrics (repro.systems.metrics)."""

import pytest

from repro.hardware.spec import P3_2XLARGE
from repro.model.config import ModelConfig
from repro.systems.base import SystemRunResult
from repro.systems.metrics import (
    DegenerateLatencyError,
    ThroughputReport,
    speedup,
    throughput_report,
)


@pytest.fixture
def result():
    return SystemRunResult(
        system="test",
        iteration_times=[0.100] * 3 + [0.050] * 7,
        energies=[30.0] * 3 + [10.0] * 7,
    )


class TestThroughputReport:
    def test_steady_state_metrics(self, result):
        config = ModelConfig()
        report = throughput_report(result, config, dataset_samples=2048 * 100,
                                   warmup=3)
        assert report.iteration_seconds == pytest.approx(0.050)
        assert report.samples_per_second == pytest.approx(2048 / 0.050)
        assert report.epoch_iterations == 100
        assert report.epoch_seconds == pytest.approx(5.0)
        assert report.epoch_joules == pytest.approx(1000.0)

    def test_epoch_iterations_ceil(self, result):
        config = ModelConfig()
        report = throughput_report(result, config,
                                   dataset_samples=2048 * 10 + 1, warmup=3)
        assert report.epoch_iterations == 11

    def test_dataset_size_validated(self, result):
        with pytest.raises(ValueError):
            throughput_report(result, ModelConfig(), dataset_samples=0)

    def test_zero_latency_raises_named_error(self):
        # A degenerate run (e.g. empty-stage metadata pricing) used to
        # surface as a bare ZeroDivisionError from the samples/s division.
        result = SystemRunResult(
            system="degenerate",
            iteration_times=[0.0] * 10,
            energies=[0.0] * 10,
        )
        with pytest.raises(DegenerateLatencyError,
                           match="degenerate.*warmup=3"):
            throughput_report(result, ModelConfig(), dataset_samples=100,
                              warmup=3)

    def test_zero_latency_error_is_a_value_error(self):
        result = SystemRunResult(
            system="z", iteration_times=[0.0] * 5, energies=[0.0] * 5
        )
        with pytest.raises(ValueError):
            throughput_report(result, ModelConfig(), dataset_samples=10,
                              warmup=0)

    def test_epoch_cost(self, result):
        report = throughput_report(result, ModelConfig(),
                                   dataset_samples=2048 * 7200, warmup=3)
        # 7200 iterations x 50 ms = 360 s = 0.1 hr.
        assert report.epoch_cost(P3_2XLARGE) == pytest.approx(0.306)


class TestSpeedup:
    def test_ratio(self):
        slow = ThroughputReport("a", 0.1, 1000.0, 10, 1.0, 10.0)
        fast = ThroughputReport("b", 0.05, 4000.0, 10, 0.5, 5.0)
        assert speedup(slow, fast) == pytest.approx(4.0)

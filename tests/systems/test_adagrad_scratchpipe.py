"""Tests for Adagrad state co-location (repro.systems.adagrad_scratchpipe)."""

import numpy as np
import pytest

from repro.core.pipeline import HazardMonitor
from repro.core.scratchpad import required_slots
from repro.data.trace import make_dataset
from repro.model.adagrad import AdagradOptimizer
from repro.model.config import tiny_config
from repro.model.dlrm import DLRMModel, DenseNetwork
from repro.systems.adagrad_scratchpipe import (
    AdagradScratchPipeRun,
    AdagradScratchPipeTrainer,
    augment_tables,
    split_tables,
)

NUM_BATCHES = 16


@pytest.fixture
def cfg():
    return tiny_config(rows_per_table=300, batch_size=8, lookups_per_table=3,
                       num_tables=2)


class TestAugmentation:
    def test_round_trip(self):
        rng = np.random.default_rng(0)
        tables = [rng.standard_normal((10, 4)).astype(np.float32)]
        augmented = augment_tables(tables)
        assert augmented[0].shape == (10, 5)
        assert np.allclose(augmented[0][:, 4], 0.0)
        weights, accumulators = split_tables(augmented)
        assert np.array_equal(weights[0], tables[0])
        assert accumulators[0].shape == (10,)

    def test_rejects_bad_rank(self):
        with pytest.raises(ValueError):
            augment_tables([np.zeros(5, dtype=np.float32)])


class TestTrainerValidation:
    def test_positive_lr(self, cfg):
        dense = DenseNetwork.initialise(cfg, np.random.default_rng(0))
        with pytest.raises(ValueError):
            AdagradScratchPipeTrainer(config=cfg, dense_network=dense, lr=0.0)


class TestEquivalence:
    def _reference(self, cfg, dataset, seed, lr):
        model = DLRMModel.initialise(
            cfg, seed=seed,
            optimizer=AdagradOptimizer(lr=lr, state_dtype=np.float32),
        )
        losses = [model.train_step(dataset.batch(i))
                  for i in range(NUM_BATCHES)]
        return model, losses

    def test_bit_identical_weights_and_state(self, cfg):
        """Pipelined Adagrad with migrating accumulators reproduces the
        sequential reference exactly — weights AND optimiser state."""
        dataset = make_dataset(cfg, "medium", seed=19, num_batches=NUM_BATCHES,
                               with_dense=True)
        reference, ref_losses = self._reference(cfg, dataset, seed=33, lr=0.05)

        init = DLRMModel.initialise(cfg, seed=33)
        run = AdagradScratchPipeRun(
            config=cfg,
            weight_tables=[t.weights.copy() for t in init.tables],
            dense_network=init.dense_network,
            num_slots=required_slots(cfg),
            lr=0.05,
            monitor=HazardMonitor(strict=True),
        )
        result = run.run(dataset)
        weights, accumulators = run.final_state()

        for t in range(cfg.num_tables):
            assert np.array_equal(weights[t], reference.tables[t].weights)
            ref_state = reference.optimizer._sparse[
                id(reference.tables[t])
            ].accumulator(np.arange(cfg.rows_per_table))
            assert np.array_equal(accumulators[t], ref_state)
        assert np.allclose(result.losses, ref_losses, rtol=0, atol=0)

    def test_state_survives_eviction(self, cfg):
        """Accumulators round-trip through CPU memory on eviction: a tight
        cache (constant evictions) still matches the reference exactly."""
        dataset = make_dataset(cfg, "low", seed=23, num_batches=NUM_BATCHES,
                               with_dense=True)
        reference, _ = self._reference(cfg, dataset, seed=44, lr=0.05)

        init = DLRMModel.initialise(cfg, seed=44)
        run = AdagradScratchPipeRun(
            config=cfg,
            weight_tables=[t.weights.copy() for t in init.tables],
            dense_network=init.dense_network,
            num_slots=required_slots(cfg, window_batches=6),
            lr=0.05,
            monitor=HazardMonitor(strict=True),
        )
        run.run(dataset)
        # Evictions must actually have happened for this test to bite.
        weights, accumulators = run.final_state()
        for t in range(cfg.num_tables):
            assert np.array_equal(weights[t], reference.tables[t].weights)
            # Rows trained then evicted keep nonzero accumulators on CPU.
            assert (accumulators[t] > 0).any()

    def test_accumulators_grow_only_for_trained_rows(self, cfg):
        dataset = make_dataset(cfg, "high", seed=29, num_batches=8,
                               with_dense=True)
        init = DLRMModel.initialise(cfg, seed=1)
        run = AdagradScratchPipeRun(
            config=cfg,
            weight_tables=[t.weights.copy() for t in init.tables],
            dense_network=init.dense_network,
            num_slots=required_slots(cfg),
            lr=0.05,
        )
        run.run(dataset)
        _, accumulators = run.final_state()
        touched = np.unique(np.concatenate([
            dataset.batch(i).table_ids(0) for i in range(8)
        ]))
        untouched = np.setdiff1d(np.arange(cfg.rows_per_table), touched)
        assert np.allclose(accumulators[0][untouched], 0.0)
        assert (accumulators[0][touched] > 0).all()

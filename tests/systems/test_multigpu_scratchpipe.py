"""Tests for multi-GPU ScratchPipe (repro.systems.multigpu_scratchpipe)."""

import dataclasses

import pytest

from repro.data.trace import MaterialisedDataset, make_dataset
from repro.hardware.spec import DEFAULT_HARDWARE
from repro.model.config import ModelConfig, tiny_config
from repro.systems.multigpu_scratchpipe import (
    MultiGpuScratchPipeSystem,
    tco_comparison,
)
from repro.systems.scratchpipe_system import ScratchPipeSystem


@pytest.fixture(scope="module")
def trace():
    config = ModelConfig()
    return MaterialisedDataset(
        make_dataset(config, "medium", seed=4, num_batches=12)
    )


class TestConstruction:
    def test_gpu_count_validated(self):
        with pytest.raises(ValueError):
            MultiGpuScratchPipeSystem(ModelConfig(), DEFAULT_HARDWARE, 0.02,
                                      num_gpus=0)

    def test_gpu_count_must_divide_tables(self):
        with pytest.raises(ValueError, match="divide"):
            MultiGpuScratchPipeSystem(ModelConfig(), DEFAULT_HARDWARE, 0.02,
                                      num_gpus=3)


class TestScaling:
    def test_one_gpu_close_to_single_gpu_design(self, trace):
        config = ModelConfig()
        single = ScratchPipeSystem(config, DEFAULT_HARDWARE, 0.02)
        multi1 = MultiGpuScratchPipeSystem(config, DEFAULT_HARDWARE, 0.02,
                                           num_gpus=1)
        a = single.run_trace(trace).mean_latency(8)
        b = multi1.run_trace(trace).mean_latency(8)
        # Same design modulo the (empty) collective terms.
        assert b == pytest.approx(a, rel=0.15)

    def test_more_gpus_somewhat_faster(self, trace):
        config = ModelConfig()
        two = MultiGpuScratchPipeSystem(config, DEFAULT_HARDWARE, 0.02,
                                        num_gpus=2)
        eight = MultiGpuScratchPipeSystem(config, DEFAULT_HARDWARE, 0.02,
                                          num_gpus=8)
        assert (
            eight.run_trace(trace).mean_latency(8)
            <= two.run_trace(trace).mean_latency(8)
        )

    def test_sublinear_scaling(self, trace):
        # Section VI-G's prediction: multi-GPU ScratchPipe underutilises the
        # extra GPUs (CPU memory and the dense network do not scale).
        config = ModelConfig()
        single = ScratchPipeSystem(config, DEFAULT_HARDWARE, 0.02)
        eight = MultiGpuScratchPipeSystem(config, DEFAULT_HARDWARE, 0.02,
                                          num_gpus=8)
        s = single.run_trace(trace).mean_latency(8)
        m = eight.run_trace(trace).mean_latency(8)
        out = tco_comparison(s, m, num_gpus=8)
        assert out["speedup"] < 4.0  # nowhere near 8x
        assert out["scaling_efficiency"] < 0.5
        assert out["cost_ratio"] > 1.5  # strictly worse TCO


class TestTcoComparison:
    def test_validation(self):
        with pytest.raises(ValueError):
            tco_comparison(0.0, 1.0, 8)

    def test_perfect_scaling_reference(self):
        out = tco_comparison(0.080, 0.010, num_gpus=8)
        assert out["speedup"] == pytest.approx(8.0)
        assert out["scaling_efficiency"] == pytest.approx(1.0)
        assert out["cost_ratio"] == pytest.approx(1.0)


class TestStageStructure:
    def test_breakdowns_cover_all_stages(self, trace):
        config = ModelConfig()
        system = MultiGpuScratchPipeSystem(config, DEFAULT_HARDWARE, 0.02,
                                           num_gpus=4)
        result = system.run_trace(trace)
        stages = result.stage_means(warmup=8)
        assert set(stages) == {"plan", "collect", "exchange", "insert",
                               "train"}

    def test_cpu_collect_does_not_scale_with_gpus(self, trace):
        """DDR4 is shared: Collect stays constant as GPUs are added —
        the structural reason multi-GPU ScratchPipe scales poorly."""
        config = ModelConfig()
        two = MultiGpuScratchPipeSystem(config, DEFAULT_HARDWARE, 0.02,
                                        num_gpus=2).run_trace(trace)
        eight = MultiGpuScratchPipeSystem(config, DEFAULT_HARDWARE, 0.02,
                                          num_gpus=8).run_trace(trace)
        collect_2 = two.stage_means(warmup=8)["collect"]
        collect_8 = eight.stage_means(warmup=8)["collect"]
        assert collect_8 == pytest.approx(collect_2, rel=0.02)

    def test_train_shrinks_with_gpus(self, trace):
        config = ModelConfig()
        two = MultiGpuScratchPipeSystem(config, DEFAULT_HARDWARE, 0.02,
                                        num_gpus=2).run_trace(trace)
        eight = MultiGpuScratchPipeSystem(config, DEFAULT_HARDWARE, 0.02,
                                          num_gpus=8).run_trace(trace)
        assert (
            eight.stage_means(warmup=8)["train"]
            < two.stage_means(warmup=8)["train"]
        )

"""Statistical conformance tests for every workload generator.

Each scenario process ships with a seeded chi-squared and/or KS check that
its empirical access frequencies match the *configured* process — the
expected probabilities are computed from the process parameters (exact
sampler pmf, rotated/remapped row pmf, burst mixture, binomial traffic
shares), so a mis-implemented exponent, rotation, re-homing or share would
fail by orders of magnitude.  All draws are seeded: these tests are
deterministic, and the significance level (1e-6) keeps them far from the
rejection boundary for the committed seeds.
"""

import numpy as np
import pytest

from repro.data.conformance import chi_squared_gof, ks_gof
from repro.data.datasets import locality_distribution
from repro.data.distributions import UniformDistribution, ZipfDistribution
from repro.data.scenarios import (
    BurstSpec,
    ChurnSpec,
    CorrelationSpec,
    DiurnalSpec,
    DriftSpec,
    ReshuffleSpec,
    ScenarioSpec,
    build_scenario,
)
from repro.model.config import tiny_config

NUM_ROWS = 1000

#: Large-sample config: one table, 2048 lookups per batch, so a handful of
#: batches gives tight empirical frequencies over 1000 rows.
CFG = tiny_config(
    rows_per_table=NUM_ROWS, batch_size=512, lookups_per_table=4, num_tables=1
)


def sampled_counts(spec, batches, seed=11):
    """Per-row access counts over the given batch indices (table 0)."""
    source = build_scenario(
        CFG, spec, seed=seed, num_batches=max(batches) + 1
    )
    counts = np.zeros(NUM_ROWS, dtype=np.int64)
    for index in batches:
        counts += np.bincount(
            source.batch(index).table_ids(0), minlength=NUM_ROWS
        )
    return counts


def expected_row_pmf(spec, batch_index, seed=11):
    """Exact row pmf the configured process induces at one batch.

    Built from the scenario's own deterministic rank->row mapping applied
    to the exact sampler pmf over ranks — the ground truth the empirical
    counts must conform to.
    """
    source = build_scenario(CFG, spec, seed=seed, num_batches=batch_index + 1)
    content = source._content_index(batch_index)
    dist = source._distribution_at(content)
    ranks = np.arange(NUM_ROWS)
    if isinstance(dist, ZipfDistribution):
        rank_pmf = dist.rank_pmf(ranks)
    else:
        rank_pmf = np.full(NUM_ROWS, 1.0 / NUM_ROWS)
    rows = source._map_ranks_to_rows(ranks, table=0, content_index=content)
    pmf = np.zeros(NUM_ROWS)
    np.add.at(pmf, rows, rank_pmf)
    burst_rows = source._burst_rows(content)
    if burst_rows is not None:
        share = spec.burst.share
        burst_pmf = np.zeros(NUM_ROWS)
        np.add.at(burst_pmf, burst_rows, 1.0 / burst_rows.size)
        pmf = (1.0 - share) * pmf + share * burst_pmf
    return pmf


class TestStationaryGenerators:
    def test_uniform_chi_squared(self):
        spec = ScenarioSpec(locality="random")
        counts = sampled_counts(spec, range(40))
        probs = np.full(NUM_ROWS, 1.0 / NUM_ROWS)
        result = chi_squared_gof(counts, probs)
        assert result.ok, (result.statistic, result.critical)

    @pytest.mark.parametrize("locality", ["low", "medium", "high"])
    def test_zipf_chi_squared(self, locality):
        spec = ScenarioSpec(locality=locality)
        counts = sampled_counts(spec, range(40))
        dist = locality_distribution(locality, NUM_ROWS)
        probs = dist.rank_pmf(np.arange(NUM_ROWS))
        result = chi_squared_gof(counts, probs)
        assert result.ok, (locality, result.statistic, result.critical)

    @pytest.mark.parametrize("locality", ["low", "medium", "high"])
    def test_zipf_ks(self, locality):
        spec = ScenarioSpec(locality=locality)
        source = build_scenario(CFG, spec, seed=11, num_batches=20)
        samples = np.concatenate(
            [source.batch(i).table_ids(0) for i in range(20)]
        )
        dist = locality_distribution(locality, NUM_ROWS)
        cdf = np.cumsum(dist.rank_pmf(np.arange(NUM_ROWS)))
        result = ks_gof(samples, cdf)
        assert result.ok, (locality, result.statistic, result.critical)

    def test_wrong_exponent_is_rejected(self):
        """Power check: the conformance harness is not vacuous."""
        spec = ScenarioSpec(locality="high")
        counts = sampled_counts(spec, range(40))
        wrong = ZipfDistribution(num_rows=NUM_ROWS, exponent=0.4)
        result = chi_squared_gof(counts, wrong.rank_pmf(np.arange(NUM_ROWS)))
        assert not result.ok
        assert result.statistic > 10 * result.critical


class TestDriftConformance:
    def test_rotated_pmf_matches_per_batch(self):
        spec = ScenarioSpec(locality="high", drift=DriftSpec(rate=37.0))
        for index in (0, 5, 13):
            source = build_scenario(CFG, spec, seed=11, num_batches=index + 1)
            counts = np.bincount(
                source.batch(index).table_ids(0), minlength=NUM_ROWS
            )
            probs = expected_row_pmf(spec, index)
            result = chi_squared_gof(counts, probs, min_expected=5.0)
            assert result.ok, (index, result.statistic, result.critical)

    def test_head_mass_follows_the_rotation(self):
        spec = ScenarioSpec(locality="high", drift=DriftSpec(rate=100.0))
        dist = locality_distribution("high", NUM_ROWS)
        head_mass = float(dist.rank_pmf(np.arange(20)).sum())
        for index in (2, 7):
            shift = int(100.0 * index) % NUM_ROWS
            window = (np.arange(20) + shift) % NUM_ROWS
            source = build_scenario(CFG, spec, seed=11, num_batches=8)
            ids = source.batch(index).table_ids(0)
            observed = np.isin(ids, window).mean()
            # Binomial 6-sigma tolerance around the analytic head mass.
            sigma = (head_mass * (1 - head_mass) / ids.size) ** 0.5
            assert abs(observed - head_mass) < 6 * sigma + 0.01


class TestChurnConformance:
    def test_remapped_pmf_matches(self):
        spec = ScenarioSpec(
            locality="high", churn=ChurnSpec(hot_fraction=0.05, period=16)
        )
        for index in (0, 9, 33):
            source = build_scenario(CFG, spec, seed=11, num_batches=index + 1)
            counts = np.bincount(
                source.batch(index).table_ids(0), minlength=NUM_ROWS
            )
            probs = expected_row_pmf(spec, index)
            result = chi_squared_gof(counts, probs, min_expected=5.0)
            assert result.ok, (index, result.statistic, result.critical)

    def test_survival_fraction_matches_period(self):
        """About 1/period of the hot mapping changes per batch."""
        spec = ScenarioSpec(
            locality="high", churn=ChurnSpec(hot_fraction=0.2, period=20)
        )
        source = build_scenario(CFG, spec, seed=11, num_batches=40)
        hot = np.arange(int(0.2 * NUM_ROWS))
        changes = []
        for index in range(30):
            now = source._map_ranks_to_rows(hot, 0, index)
            nxt = source._map_ranks_to_rows(hot, 0, index + 1)
            changes.append((now != nxt).mean())
        mean_change = float(np.mean(changes))
        assert mean_change == pytest.approx(1.0 / 20, rel=0.35)


class TestBurstConformance:
    def test_burst_share_binomial(self):
        spec = ScenarioSpec(
            locality="random",
            burst=BurstSpec(period=32, duration=4, share=0.35, rows=8),
        )
        source = build_scenario(CFG, spec, seed=11, num_batches=40)
        burst_rows = source._burst_rows(1)
        ids = source.batch(1).table_ids(0)
        on_burst = np.isin(ids, burst_rows).mean()
        # share + (1-share) * |burst| / num_rows background traffic.
        expected = 0.35 + (1 - 0.35) * 8 / NUM_ROWS
        sigma = (expected * (1 - expected) / ids.size) ** 0.5
        assert abs(on_burst - expected) < 6 * sigma

    def test_off_window_matches_base_process(self):
        spec = ScenarioSpec(
            locality="medium",
            burst=BurstSpec(period=32, duration=4, share=0.35, rows=8),
        )
        counts = sampled_counts(spec, range(8, 32))  # off-burst batches
        dist = locality_distribution("medium", NUM_ROWS)
        result = chi_squared_gof(counts, dist.rank_pmf(np.arange(NUM_ROWS)))
        assert result.ok, (result.statistic, result.critical)

    def test_mixture_pmf_during_burst(self):
        spec = ScenarioSpec(
            locality="medium",
            burst=BurstSpec(period=32, duration=4, share=0.5, rows=8),
        )
        source = build_scenario(CFG, spec, seed=11, num_batches=4)
        counts = np.bincount(source.batch(2).table_ids(0), minlength=NUM_ROWS)
        probs = expected_row_pmf(spec, 2)
        result = chi_squared_gof(counts, probs, min_expected=5.0)
        assert result.ok, (result.statistic, result.critical)


class TestDiurnalConformance:
    @pytest.mark.parametrize("index", [0, 8, 16])
    def test_modulated_exponent_pmf(self, index):
        spec = ScenarioSpec(
            locality="medium",
            diurnal=DiurnalSpec(low=0.35, high=0.85, period=32),
        )
        source = build_scenario(CFG, spec, seed=11, num_batches=index + 1)
        counts = np.bincount(
            source.batch(index).table_ids(0), minlength=NUM_ROWS
        )
        exponent = spec.diurnal.exponent_at(index)
        dist = ZipfDistribution(num_rows=NUM_ROWS, exponent=exponent)
        result = chi_squared_gof(
            counts, dist.rank_pmf(np.arange(NUM_ROWS)), min_expected=5.0
        )
        assert result.ok, (index, exponent, result.statistic, result.critical)


class TestCorrelationConformance:
    def test_coupled_fraction_binomial(self):
        cfg = tiny_config(
            rows_per_table=NUM_ROWS, batch_size=512, lookups_per_table=4,
            num_tables=2,
        )
        rho = 0.6
        spec = ScenarioSpec(
            locality="high", correlation=CorrelationSpec(rho=rho)
        )
        source = build_scenario(cfg, spec, seed=11, num_batches=8)
        dist = locality_distribution("high", NUM_ROWS)
        pmf = dist.rank_pmf(np.arange(NUM_ROWS))
        collide = float((pmf ** 2).sum())  # same row by chance
        expected = rho + (1 - rho) * collide
        matches = []
        for index in range(8):
            batch = source.batch(index)
            matches.append(
                (batch.table_ids(0) == batch.table_ids(1)).mean()
            )
        observed = float(np.mean(matches))
        n = 8 * 512 * 4
        sigma = (expected * (1 - expected) / n) ** 0.5
        assert abs(observed - expected) < 6 * sigma + 0.01


class TestReshuffleConformance:
    def test_epoch_content_conforms_to_base(self):
        spec = ScenarioSpec(
            locality="medium", reshuffle=ReshuffleSpec(epoch_batches=10)
        )
        # Second epoch: same content, shuffled — frequencies must still
        # conform to the configured base process.
        counts = sampled_counts(spec, range(10, 20))
        dist = locality_distribution("medium", NUM_ROWS)
        result = chi_squared_gof(counts, dist.rank_pmf(np.arange(NUM_ROWS)))
        assert result.ok, (result.statistic, result.critical)

"""Tests for access distributions (repro.data.distributions)."""

import numpy as np
import pytest

from repro.data.distributions import (
    InvalidZipfExponentError,
    UniformDistribution,
    ZipfDistribution,
    fit_zipf_exponent,
    permuted,
)


@pytest.fixture
def rng():
    return np.random.default_rng(99)


class TestUniformDistribution:
    def test_samples_in_range(self, rng):
        dist = UniformDistribution(num_rows=100)
        ids = dist.sample(10_000, rng)
        assert ids.min() >= 0 and ids.max() < 100

    def test_hit_rate_equals_cache_fraction(self):
        dist = UniformDistribution(num_rows=1000)
        assert dist.hit_rate(0.3) == pytest.approx(0.3)
        assert dist.hit_rate(0.0) == 0.0
        assert dist.hit_rate(1.0) == 1.0

    def test_pdf_is_flat(self):
        dist = UniformDistribution(num_rows=1000)
        pdf = dist.sorted_pdf(10)
        assert np.allclose(pdf, 1 / 1000)

    def test_rejects_empty_table(self):
        with pytest.raises(ValueError):
            UniformDistribution(num_rows=0)

    def test_roughly_uniform_coverage(self, rng):
        dist = UniformDistribution(num_rows=10)
        ids = dist.sample(100_000, rng)
        counts = np.bincount(ids, minlength=10)
        assert counts.min() > 0.8 * counts.mean()


class TestZipfDistribution:
    def test_exponent_bounds(self):
        with pytest.raises(ValueError):
            ZipfDistribution(num_rows=10, exponent=0.0)
        with pytest.raises(ValueError):
            ZipfDistribution(num_rows=10, exponent=1.0)

    @pytest.mark.parametrize(
        "alpha", [0.0, -0.5, 1.0, 1.5, float("nan"), float("inf")]
    )
    def test_invalid_alpha_raises_named_error(self, alpha):
        """Regression: alpha <= 0 (and every other out-of-domain value)
        raises the *named* error at construction instead of degenerating
        to NaN/flat weights downstream.  The named error is a ValueError
        subclass, so existing callers keep working."""
        with pytest.raises(InvalidZipfExponentError):
            ZipfDistribution(num_rows=10, exponent=alpha)
        assert issubclass(InvalidZipfExponentError, ValueError)

    def test_valid_alpha_weights_finite(self, rng):
        """The guarded domain never produces NaN weights or samples."""
        for alpha in (1e-6, 0.5, 1.0 - 1e-6):
            dist = ZipfDistribution(num_rows=1000, exponent=alpha)
            pmf = dist.rank_pmf(np.arange(1000))
            assert np.isfinite(pmf).all()
            assert pmf.sum() == pytest.approx(1.0)
            assert np.isfinite(dist.sorted_pdf(100)).all()
            assert (dist.sample(100, rng) < 1000).all()

    def test_rank_pmf_matches_sampler_exactly(self, rng):
        """rank_pmf is the exact induced pmf of the inverse-CDF sampler."""
        dist = ZipfDistribution(num_rows=50, exponent=0.7)
        ids = dist.sample(400_000, rng)
        counts = np.bincount(ids, minlength=50) / ids.size
        assert np.allclose(counts, dist.rank_pmf(np.arange(50)), atol=0.005)

    def test_rank_of_uniform_is_sample_transform(self, rng):
        """sample() == rank_of_uniform over the same uniforms (the hook
        the correlated-scenario path relies on)."""
        dist = ZipfDistribution(num_rows=1000, exponent=0.8)
        state = rng.bit_generator.state
        sampled = dist.sample(1000, rng)
        rng.bit_generator.state = state
        transformed = dist.rank_of_uniform(rng.random(1000))
        assert np.array_equal(sampled, transformed)

    def test_uniform_rank_of_uniform_in_range(self):
        dist = UniformDistribution(num_rows=10)
        ranks = dist.rank_of_uniform(np.array([0.0, 0.5, 0.999999, 1.0]))
        assert ranks.min() >= 0 and ranks.max() == 9

    def test_samples_in_range(self, rng):
        dist = ZipfDistribution(num_rows=1000, exponent=0.7)
        ids = dist.sample(50_000, rng)
        assert ids.min() >= 0 and ids.max() < 1000

    def test_low_ranks_hotter(self, rng):
        dist = ZipfDistribution(num_rows=1000, exponent=0.8)
        ids = dist.sample(200_000, rng)
        counts = np.bincount(ids, minlength=1000)
        # The hottest decile must receive far more traffic than the coldest.
        assert counts[:100].sum() > 5 * counts[-100:].sum()

    def test_hit_rate_closed_form(self):
        dist = ZipfDistribution(num_rows=10**6, exponent=0.5)
        assert dist.hit_rate(0.04) == pytest.approx(0.2)

    def test_hit_rate_monotone(self):
        dist = ZipfDistribution(num_rows=10**6, exponent=0.7)
        fractions = np.linspace(0.01, 1.0, 50)
        rates = [dist.hit_rate(f) for f in fractions]
        assert all(a <= b for a, b in zip(rates, rates[1:]))

    def test_empirical_hit_rate_matches_analytic(self, rng):
        dist = ZipfDistribution(num_rows=100_000, exponent=0.8)
        ids = dist.sample(200_000, rng)
        hot = int(0.02 * dist.num_rows)
        empirical = (ids < hot).mean()
        assert empirical == pytest.approx(dist.hit_rate(0.02), abs=0.03)

    def test_pdf_descending(self):
        dist = ZipfDistribution(num_rows=10_000, exponent=0.6)
        pdf = dist.sorted_pdf(100)
        assert np.all(np.diff(pdf) <= 0)

    def test_pdf_mass_bounded(self):
        dist = ZipfDistribution(num_rows=10_000, exponent=0.6)
        pdf = dist.sorted_pdf(10_000)
        assert pdf.sum() == pytest.approx(1.0, abs=0.05)

    def test_higher_exponent_more_locality(self):
        low = ZipfDistribution(num_rows=10**6, exponent=0.37)
        high = ZipfDistribution(num_rows=10**6, exponent=0.95)
        assert high.hit_rate(0.02) > low.hit_rate(0.02)


class TestFitZipfExponent:
    def test_criteo_anchor(self):
        # Criteo: 2% of rows -> >80% of accesses (Section III-A).
        s = fit_zipf_exponent(0.02, 0.82)
        assert 0.9 < s < 1.0
        dist = ZipfDistribution(num_rows=10**6, exponent=s)
        assert dist.hit_rate(0.02) == pytest.approx(0.82, abs=1e-9)

    def test_alibaba_anchor(self):
        # Alibaba: 2% of rows -> 8.5% of accesses.
        s = fit_zipf_exponent(0.02, 0.085)
        assert 0.3 < s < 0.45

    def test_invalid_anchor_rejected(self):
        with pytest.raises(ValueError):
            fit_zipf_exponent(0.0, 0.5)
        with pytest.raises(ValueError):
            fit_zipf_exponent(0.5, 1.0)
        with pytest.raises(ValueError):
            # hit_rate < cache_fraction implies exponent < 0.
            fit_zipf_exponent(0.5, 0.1)


class TestPermuted:
    def test_preserves_multiset_size(self, rng):
        ids = np.array([0, 1, 1, 5], dtype=np.int64)
        out = permuted(ids, 10, rng)
        assert out.shape == ids.shape
        assert out.min() >= 0 and out.max() < 10

    def test_is_bijective_on_ids(self, rng):
        ids = np.arange(10, dtype=np.int64)
        out = permuted(ids, 10, rng)
        assert sorted(out.tolist()) == list(range(10))

    def test_equal_ids_stay_equal(self, rng):
        ids = np.array([3, 3, 3], dtype=np.int64)
        out = permuted(ids, 10, rng)
        assert len(set(out.tolist())) == 1

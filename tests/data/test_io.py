"""Tests for trace persistence (repro.data.io)."""

import numpy as np
import pytest

from repro.data.io import TraceFile, save_trace
from repro.data.trace import make_dataset
from repro.model.config import tiny_config


@pytest.fixture
def cfg():
    return tiny_config(rows_per_table=100, batch_size=4, lookups_per_table=2,
                       num_tables=2)


class TestRoundTrip:
    def test_id_only_round_trip(self, cfg, tmp_path):
        dataset = make_dataset(cfg, "medium", seed=3, num_batches=5)
        batches = [dataset.batch(i) for i in range(5)]
        path = tmp_path / "trace.npz"
        save_trace(path, batches, cfg)
        loaded = TraceFile(path)
        assert len(loaded) == 5
        for i in range(5):
            assert np.array_equal(loaded.batch(i).sparse_ids,
                                  batches[i].sparse_ids)
            assert loaded.batch(i).dense is None

    def test_dense_round_trip(self, cfg, tmp_path):
        dataset = make_dataset(cfg, "medium", seed=3, num_batches=3,
                               with_dense=True)
        batches = [dataset.batch(i) for i in range(3)]
        path = tmp_path / "trace.npz"
        save_trace(path, batches, cfg)
        loaded = TraceFile(path)
        for i in range(3):
            assert np.array_equal(loaded.batch(i).dense, batches[i].dense)
            assert np.array_equal(loaded.batch(i).labels, batches[i].labels)

    def test_geometry_metadata(self, cfg, tmp_path):
        dataset = make_dataset(cfg, "low", seed=1, num_batches=2)
        path = tmp_path / "trace.npz"
        save_trace(path, [dataset.batch(0), dataset.batch(1)], cfg)
        loaded = TraceFile(path)
        assert loaded.num_tables == cfg.num_tables
        assert loaded.batch_size == cfg.batch_size
        loaded.validate_against(cfg)  # must not raise

    def test_validate_against_mismatch(self, cfg, tmp_path):
        dataset = make_dataset(cfg, "low", seed=1, num_batches=1)
        path = tmp_path / "trace.npz"
        save_trace(path, [dataset.batch(0)], cfg)
        loaded = TraceFile(path)
        other = cfg.scaled(batch_size=cfg.batch_size * 2)
        with pytest.raises(ValueError, match="batch_size"):
            loaded.validate_against(other)


class TestValidation:
    def test_empty_trace_rejected(self, cfg, tmp_path):
        with pytest.raises(ValueError, match="empty"):
            save_trace(tmp_path / "t.npz", [], cfg)

    def test_mixed_dense_rejected(self, cfg, tmp_path):
        with_dense = make_dataset(cfg, "low", seed=1, num_batches=1,
                                  with_dense=True)
        without = make_dataset(cfg, "low", seed=1, num_batches=1)
        with pytest.raises(ValueError, match="dense"):
            save_trace(tmp_path / "t.npz",
                       [with_dense.batch(0), without.batch(0)], cfg)

    def test_out_of_range_batch(self, cfg, tmp_path):
        dataset = make_dataset(cfg, "low", seed=1, num_batches=1)
        path = tmp_path / "t.npz"
        save_trace(path, [dataset.batch(0)], cfg)
        loaded = TraceFile(path)
        with pytest.raises(IndexError):
            loaded.batch(1)


class TestPipelineCompatibility:
    def test_trace_file_drives_pipeline(self, cfg, tmp_path):
        """A saved trace is a drop-in dataset for the ScratchPipe pipeline."""
        from repro.core.pipeline import ScratchPipePipeline
        from repro.systems.scratchpipe_system import make_scratchpads

        dataset = make_dataset(cfg, "medium", seed=9, num_batches=8)
        path = tmp_path / "t.npz"
        save_trace(path, [dataset.batch(i) for i in range(8)], cfg)
        loaded = TraceFile(path)
        pipeline = ScratchPipePipeline(
            config=cfg,
            scratchpads=make_scratchpads(cfg, 64),
            dataset_batches=loaded,
        )
        result = pipeline.run()
        assert len(result.cache_stats) == 8

"""Streaming == materialised equivalence for every trace source.

The TraceSource contract: chunk-wise emission produces bit-identical
``MiniBatch`` sequences to one-shot materialisation, for every scenario,
every chunk size, across ``reset()`` and re-iteration — so consumers can
choose constant-memory streaming or in-memory replay freely.
"""

import numpy as np
import pytest

from repro.data.io import TraceFile, save_trace
from repro.data.scenarios import (
    SCENARIO_PRESETS,
    TsvTraceSource,
    build_scenario,
)
from repro.data.trace import MaterialisedDataset, make_dataset
from repro.model.config import tiny_config


@pytest.fixture
def cfg():
    return tiny_config(
        rows_per_table=500, batch_size=8, lookups_per_table=3, num_tables=2
    )


def assert_batches_equal(a, b):
    assert a.index == b.index
    assert np.array_equal(a.sparse_ids, b.sparse_ids)
    if a.dense is None:
        assert b.dense is None
    else:
        assert np.array_equal(a.dense, b.dense)
        assert np.array_equal(a.labels, b.labels)


def assert_streaming_equivalent(source, chunk_batches):
    """One-shot materialisation == chunked emission == post-reset replay."""
    materialised = MaterialisedDataset(source)
    source.reset()
    streamed = [
        batch
        for chunk in source.iter_chunks(chunk_batches=chunk_batches)
        for batch in chunk
    ]
    assert len(streamed) == len(materialised) == len(source)
    for i, batch in enumerate(streamed):
        assert_batches_equal(batch, materialised.batch(i))
    # Re-iteration after reset is bit-identical.
    source.reset()
    replay = [
        batch
        for chunk in source.iter_chunks(chunk_batches=chunk_batches)
        for batch in chunk
    ]
    for first, second in zip(streamed, replay):
        assert_batches_equal(first, second)


class TestScenarioStreaming:
    @pytest.mark.parametrize("name", sorted(SCENARIO_PRESETS))
    @pytest.mark.parametrize("chunk_batches", [1, 3, 64])
    def test_every_preset_every_chunking(self, cfg, name, chunk_batches):
        source = build_scenario(
            cfg, SCENARIO_PRESETS[name], seed=4, num_batches=11
        )
        assert_streaming_equivalent(source, chunk_batches)

    def test_with_dense_streams_identically(self, cfg):
        source = build_scenario(
            cfg, SCENARIO_PRESETS["diurnal"], seed=2, num_batches=7,
            with_dense=True,
        )
        assert_streaming_equivalent(source, 2)

    def test_invalid_chunk_size_rejected(self, cfg):
        source = build_scenario(cfg, SCENARIO_PRESETS["stationary"], seed=0)
        with pytest.raises(ValueError, match="chunk_batches"):
            next(source.iter_chunks(chunk_batches=0))


class TestSyntheticStreaming:
    @pytest.mark.parametrize("chunk_batches", [1, 4, 100])
    def test_synthetic_dataset(self, cfg, chunk_batches):
        source = make_dataset(cfg, "medium", seed=9, num_batches=10)
        assert_streaming_equivalent(source, chunk_batches)

    def test_iteration_matches_chunks(self, cfg):
        source = make_dataset(cfg, "high", seed=1, num_batches=9)
        via_iter = list(source)
        via_chunks = [
            b for chunk in source.iter_chunks(chunk_batches=4) for b in chunk
        ]
        for a, b in zip(via_iter, via_chunks):
            assert_batches_equal(a, b)


class TestTraceFileStreaming:
    def test_saved_trace_streams(self, cfg, tmp_path):
        dataset = make_dataset(cfg, "medium", seed=6, num_batches=8)
        path = tmp_path / "trace.npz"
        save_trace(path, [dataset.batch(i) for i in range(8)], cfg)
        archive = TraceFile(path)
        streamed = [
            b for chunk in archive.iter_chunks(chunk_batches=3) for b in chunk
        ]
        assert len(streamed) == 8
        for i, batch in enumerate(streamed):
            assert np.array_equal(
                batch.sparse_ids, dataset.batch(i).sparse_ids
            )


class TestTsvStreaming:
    def test_tsv_streams_and_replays(self, tmp_path, rng):
        cfg = tiny_config(
            rows_per_table=64, batch_size=4, lookups_per_table=2, num_tables=2
        )
        path = tmp_path / "trace.tsv"
        with open(path, "w", encoding="utf-8") as fh:
            for _ in range(19):
                cats = [f"t{rng.integers(0, 30)}" for _ in range(4)]
                fh.write("\t".join(["0"] + [str(d) for d in range(13)] + cats) + "\n")
        source = TsvTraceSource(path, cfg)
        assert_streaming_equivalent(source, 2)


class TestPipelineStreaming:
    def test_stream_equals_run(self, cfg):
        """The pipeline's streaming twin yields exactly run()'s stats."""
        from repro.core.pipeline import ScratchPipePipeline
        from repro.core.scratchpad import required_slots
        from repro.systems.scratchpipe_system import make_scratchpads

        source = build_scenario(
            cfg, SCENARIO_PRESETS["fast-drift"], seed=3, num_batches=12
        )

        def fresh_pipeline():
            return ScratchPipePipeline(
                config=cfg,
                scratchpads=make_scratchpads(cfg, required_slots(cfg)),
                dataset_batches=source,
            )

        collected = fresh_pipeline().run().cache_stats
        streamed = list(fresh_pipeline().stream())
        assert streamed == collected
        assert [s.batch_index for s in streamed] == list(range(12))

    def test_system_stream_equals_simulate(self, cfg):
        from repro.systems.scratchpipe_system import ScratchPipeSystem
        from repro.hardware.spec import DEFAULT_HARDWARE

        source = build_scenario(
            cfg, SCENARIO_PRESETS["churn"], seed=5, num_batches=10
        )
        system = ScratchPipeSystem(cfg, DEFAULT_HARDWARE, 0.5)
        collected = system.simulate_cache(source)
        streamed = list(system.stream_cache_stats(source))
        assert streamed == collected

    def test_aggregate_matches_collected(self, cfg):
        from repro.systems.scratchpipe_system import ScratchPipeSystem
        from repro.hardware.spec import DEFAULT_HARDWARE

        source = build_scenario(
            cfg, SCENARIO_PRESETS["slow-drift"], seed=5, num_batches=10
        )
        system = ScratchPipeSystem(cfg, DEFAULT_HARDWARE, 0.5)
        stats = system.simulate_cache(source)
        totals = system.aggregate_cache_stats(source, warmup=2)
        steady = [s for s in stats if s.batch_index >= 2]
        assert totals.batches == len(steady)
        assert totals.hits == sum(s.hits for s in steady)
        assert totals.misses == sum(s.misses for s in steady)
        assert totals.unique_ids == sum(s.unique_ids for s in steady)
        assert totals.writebacks == sum(s.writebacks for s in steady)
        assert 0.0 <= totals.hit_rate <= 1.0

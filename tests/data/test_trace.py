"""Tests for trace generation (repro.data.trace)."""

import numpy as np
import pytest

from repro.data.distributions import UniformDistribution
from repro.data.trace import MaterialisedDataset, MiniBatch, SyntheticDataset, make_dataset
from repro.model.config import tiny_config


@pytest.fixture
def cfg():
    return tiny_config(rows_per_table=200, batch_size=4, lookups_per_table=3,
                       num_tables=2)


@pytest.fixture
def dataset(cfg):
    return make_dataset(cfg, "medium", seed=3, num_batches=8)


class TestMiniBatch:
    def test_sparse_shape(self, dataset, cfg):
        batch = dataset.batch(0)
        assert batch.sparse_ids.shape == (
            cfg.num_tables, cfg.batch_size, cfg.lookups_per_table
        )

    def test_table_ids_flattening(self, dataset, cfg):
        batch = dataset.batch(0)
        flat = batch.table_ids(1)
        assert flat.shape == (cfg.batch_size * cfg.lookups_per_table,)
        assert np.array_equal(flat, batch.sparse_ids[1].reshape(-1))

    def test_unique_ids_sorted(self, dataset):
        unique = dataset.batch(0).unique_table_ids(0)
        assert np.all(np.diff(unique) > 0)

    def test_id_only_batch_has_no_dense(self, dataset):
        batch = dataset.batch(0)
        assert batch.dense is None and batch.labels is None


class TestSyntheticDataset:
    def test_deterministic_random_access(self, dataset):
        a = dataset.batch(5)
        b = dataset.batch(5)
        assert np.array_equal(a.sparse_ids, b.sparse_ids)

    def test_different_batches_differ(self, dataset):
        a = dataset.batch(0)
        b = dataset.batch(1)
        assert not np.array_equal(a.sparse_ids, b.sparse_ids)

    def test_different_seeds_differ(self, cfg):
        d1 = make_dataset(cfg, "medium", seed=1, num_batches=2)
        d2 = make_dataset(cfg, "medium", seed=2, num_batches=2)
        assert not np.array_equal(d1.batch(0).sparse_ids, d2.batch(0).sparse_ids)

    def test_out_of_range_index(self, dataset):
        with pytest.raises(IndexError):
            dataset.batch(len(dataset))
        with pytest.raises(IndexError):
            dataset.batch(-1)

    def test_iteration_order(self, dataset):
        indices = [b.index for b in dataset]
        assert indices == list(range(len(dataset)))

    def test_with_dense_generates_features(self, cfg):
        ds = make_dataset(cfg, "low", num_batches=2, with_dense=True)
        batch = ds.batch(0)
        assert batch.dense.shape == (cfg.batch_size, cfg.num_dense_features)
        assert batch.labels.shape == (cfg.batch_size,)
        assert set(np.unique(batch.labels)).issubset({0.0, 1.0})

    def test_ids_within_table(self, dataset, cfg):
        for batch in dataset:
            assert batch.sparse_ids.min() >= 0
            assert batch.sparse_ids.max() < cfg.rows_per_table

    def test_distribution_row_mismatch_rejected(self, cfg):
        wrong = UniformDistribution(num_rows=cfg.rows_per_table + 1)
        with pytest.raises(ValueError, match="rows_per_table"):
            SyntheticDataset(config=cfg, distributions=(wrong,), num_batches=2)

    def test_distribution_count_validated(self, cfg):
        dists = tuple(
            UniformDistribution(num_rows=cfg.rows_per_table) for _ in range(3)
        )
        with pytest.raises(ValueError, match="length 1 or num_tables"):
            SyntheticDataset(config=cfg, distributions=dists, num_batches=2)

    def test_per_table_distributions(self, cfg):
        dists = tuple(
            UniformDistribution(num_rows=cfg.rows_per_table)
            for _ in range(cfg.num_tables)
        )
        ds = SyntheticDataset(config=cfg, distributions=dists, num_batches=2)
        assert ds.batch(0).sparse_ids.shape[0] == cfg.num_tables


class TestMaterialisedDataset:
    def test_matches_source(self, dataset):
        mat = MaterialisedDataset(dataset, num_batches=4)
        assert len(mat) == 4
        for i in range(4):
            assert np.array_equal(mat.batch(i).sparse_ids,
                                  dataset.batch(i).sparse_ids)

    def test_default_full_length(self, dataset):
        assert len(MaterialisedDataset(dataset)) == len(dataset)

    def test_invalid_length_rejected(self, dataset):
        with pytest.raises(ValueError):
            MaterialisedDataset(dataset, num_batches=0)
        with pytest.raises(ValueError):
            MaterialisedDataset(dataset, num_batches=len(dataset) + 1)

    def test_iteration(self, dataset):
        mat = MaterialisedDataset(dataset, num_batches=3)
        assert [b.index for b in mat] == [0, 1, 2]

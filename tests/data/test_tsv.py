"""Tests for the vectorised TSV ingestion path (repro.data.tsv)."""

import io

import numpy as np
import pytest

from repro.data.tsv import TsvTraceSource, hash_token
from repro.model.config import tiny_config


@pytest.fixture
def cfg():
    return tiny_config(rows_per_table=100, batch_size=4, lookups_per_table=2,
                       num_tables=2)


def _write_tsv(path, num_lines, num_cats, rng, empty_rate=0.15):
    with open(path, "w", encoding="utf-8") as fh:
        for _ in range(num_lines):
            cats = [
                "" if rng.random() < empty_rate
                else f"tok{rng.integers(0, 40)}"
                for _ in range(num_cats)
            ]
            fields = ["1"] + [str(d) for d in range(13)] + cats
            fh.write("\t".join(fields) + "\n")


class _CountingFile(io.BufferedReader):
    """Binary file wrapper counting line reads and bulk bytes read."""

    def __init__(self, raw, counter):
        super().__init__(raw)
        self._counter = counter

    def readline(self, *args):
        line = super().readline(*args)
        if line:
            self._counter["lines"] += 1
        return line

    def read(self, *args):
        data = super().read(*args)
        self._counter["bytes"] += len(data)
        return data

    def __next__(self):
        line = self.readline()
        if not line:
            raise StopIteration
        return line


class CountingTsvTraceSource(TsvTraceSource):
    """TsvTraceSource whose file opens and line reads are counted."""

    def __init__(self, *args, **kwargs):
        self.counter = {"lines": 0, "opens": 0, "bytes": 0}
        super().__init__(*args, **kwargs)

    def _open(self):
        self.counter["opens"] += 1
        return _CountingFile(io.FileIO(self.path, "r"), self.counter)


class TestEngineEquivalence:
    def test_numpy_matches_python_engine(self, cfg, tmp_path, rng):
        path = tmp_path / "t.tsv"
        _write_tsv(path, 24, 4, rng)
        fast = TsvTraceSource(path, cfg, engine="numpy")
        slow = TsvTraceSource(path, cfg, engine="python")
        assert len(fast) == len(slow) == 6
        for i in range(6):
            assert np.array_equal(fast.batch(i).sparse_ids,
                                  slow.batch(i).sparse_ids)

    def test_empty_tokens_and_crlf(self, cfg, tmp_path):
        path = tmp_path / "t.tsv"
        with open(path, "w", encoding="utf-8", newline="") as fh:
            for i in range(8):
                cats = ["", "x", "", f"y{i}"]
                fields = ["0"] + [str(d) for d in range(13)] + cats
                fh.write("\t".join(fields) + ("\r\n" if i % 2 else "\n"))
        fast = TsvTraceSource(path, cfg, engine="numpy")
        slow = TsvTraceSource(path, cfg, engine="python")
        for i in range(2):
            assert np.array_equal(fast.batch(i).sparse_ids,
                                  slow.batch(i).sparse_ids)

    def test_long_tokens_mixed_with_short(self, cfg, tmp_path):
        """Multi-word tokens must not push exhausted tokens' word gathers
        out of bounds (regression: IndexError when a >8-byte token set
        maxlen while short tokens sat near the blob end)."""
        path = tmp_path / "long.tsv"
        with open(path, "w", encoding="utf-8") as fh:
            for i in range(8):
                # A multi-word token anywhere in the block makes maxlen > 8;
                # the 1-byte tokens at the very end of the last line are the
                # ones whose word-2 gather (start + 8) overruns the blob.
                cats = ["a-token-much-longer-than-eight-bytes", "s",
                        "x", "y"]
                fields = ["1"] + [str(d) for d in range(13)] + cats
                fh.write("\t".join(fields) + "\n")
        fast = TsvTraceSource(path, cfg, engine="numpy")
        slow = TsvTraceSource(path, cfg, engine="python")
        for i in range(2):
            assert np.array_equal(fast.batch(i).sparse_ids,
                                  slow.batch(i).sparse_ids)

    def test_unknown_engine_rejected(self, cfg, tmp_path):
        with pytest.raises(ValueError, match="engine"):
            TsvTraceSource(tmp_path / "x.tsv", cfg, engine="rust")

    def test_hash_is_process_stable(self):
        # Pinned values: the token hash is part of the on-disk determinism
        # contract — compiled traces built elsewhere must replay
        # identically, so these may only change with a conscious format
        # version bump.
        assert hash_token(b"", 0, 1 << 62) == 1529511751521642755
        assert hash_token(b"a", 0, 1 << 62) == 3582205214427116630
        assert hash_token(b"a", 1, 1 << 62) == 4426307749326337945
        assert hash_token(b"deadbeef", 3, 1 << 62) == 2435877408439042664
        # multi-word tokens exercise the chunked fold
        assert (hash_token(b"longer-than-eight-bytes-token", 2, 1 << 62)
                == 1080550181156758254)
        # zero-tailed tokens of different lengths stay distinct (the
        # length seeds the fold state)
        assert (hash_token(b"a", 0, 1 << 62)
                != hash_token(b"a\x00", 0, 1 << 62))

    def test_same_token_same_row_different_tables_differ(self, cfg, tmp_path):
        path = tmp_path / "t.tsv"
        with open(path, "w", encoding="utf-8") as fh:
            for _ in range(4):
                fields = ["0"] + [str(d) for d in range(13)] + ["x"] * 4
                fh.write("\t".join(fields) + "\n")
        batch = TsvTraceSource(path, cfg).batch(0)
        assert len(set(batch.table_ids(0).tolist())) == 1
        assert batch.table_ids(0)[0] != batch.table_ids(1)[0]


class TestMaxBatchesCounting:
    def test_counting_pass_stops_early(self, cfg, tmp_path, rng):
        path = tmp_path / "big.tsv"
        _write_tsv(path, 400, 4, rng)
        capped = CountingTsvTraceSource(path, cfg, max_batches=2)
        # The construction scan must stop at max_batches * batch_size
        # samples, not read all 400 lines.
        assert len(capped) == 2
        assert capped.counter["lines"] == 2 * cfg.batch_size
        full = CountingTsvTraceSource(path, cfg)
        assert full.counter["lines"] == 400
        assert len(full) == 100

    def test_capped_content_matches_uncapped_prefix(self, cfg, tmp_path, rng):
        path = tmp_path / "t.tsv"
        _write_tsv(path, 40, 4, rng)
        capped = TsvTraceSource(path, cfg, max_batches=3)
        full = TsvTraceSource(path, cfg)
        assert len(capped) == 3
        for i in range(3):
            assert np.array_equal(capped.batch(i).sparse_ids,
                                  full.batch(i).sparse_ids)

    def test_blank_lines_do_not_count_as_samples(self, cfg, tmp_path, rng):
        path = tmp_path / "gaps.tsv"
        with open(path, "w", encoding="utf-8") as fh:
            for i in range(10):
                cats = [f"t{i}"] * 4
                fh.write("\t".join(["1"] + [str(d) for d in range(13)]
                                   + cats) + "\n")
                fh.write("\n")
        source = TsvTraceSource(path, cfg, max_batches=2)
        assert len(source) == 2


class TestDenseWidthValidation:
    def test_mismatch_fails_loudly_with_both_numbers(self, cfg, tmp_path, rng):
        path = tmp_path / "t.tsv"
        _write_tsv(path, 8, 4, rng)
        with pytest.raises(ValueError) as excinfo:
            TsvTraceSource(path, cfg, with_dense=True)  # 13 cols vs 4 feats
        assert "13" in str(excinfo.value)
        assert str(cfg.num_dense_features) in str(excinfo.value)
        assert "allow_dense_pad" in str(excinfo.value)

    def test_opt_out_restores_pad_truncate(self, cfg, tmp_path, rng):
        path = tmp_path / "t.tsv"
        _write_tsv(path, 8, 4, rng)
        source = TsvTraceSource(path, cfg, with_dense=True,
                                allow_dense_pad=True)
        batch = source.batch(0)
        assert batch.dense.shape == (4, cfg.num_dense_features)
        assert np.array_equal(batch.dense[0], [0.0, 1.0, 2.0, 3.0])

    def test_matching_width_needs_no_opt_out(self, tmp_path, rng):
        cfg13 = tiny_config(rows_per_table=100, batch_size=4,
                            lookups_per_table=2, num_tables=2,
                            num_dense_features=13)
        path = tmp_path / "t.tsv"
        _write_tsv(path, 8, 4, rng)
        batch = TsvTraceSource(path, cfg13, with_dense=True).batch(0)
        assert batch.dense.shape == (4, 13)
        assert batch.labels.shape == (4,)

    def test_id_only_parse_ignores_width(self, cfg, tmp_path, rng):
        # Metadata traces never read the dense columns; no opt-out needed.
        path = tmp_path / "t.tsv"
        _write_tsv(path, 8, 4, rng)
        assert TsvTraceSource(path, cfg).batch(0).dense is None


class TestSeekWindow:
    def test_forward_iteration_reads_file_once(self, cfg, tmp_path, rng):
        path = tmp_path / "t.tsv"
        _write_tsv(path, 64, 4, rng)
        file_bytes = path.stat().st_size
        source = CountingTsvTraceSource(path, cfg)
        construction_lines = source.counter["lines"]
        assert construction_lines == 64  # counting pass reads every line
        for i in range(len(source)):
            source.batch(i)
        # Forward pass: the file's bytes cross the parse cursor once.
        assert source.counter["bytes"] <= file_bytes
        assert source.counter["opens"] == 2  # counting pass + parse pass

    def test_lookahead_within_window_does_not_rewind(self, cfg, tmp_path, rng):
        path = tmp_path / "t.tsv"
        _write_tsv(path, 80, 4, rng)
        source = CountingTsvTraceSource(path, cfg)
        opens_before = source.counter["opens"]
        # The pipeline's access shape: plan batch i, peek future batches,
        # retire batch i - depth.  All within WINDOW_BATCHES.
        for i in range(4, 16):
            source.batch(i)
            source.batch(i - 4)
        assert source.counter["opens"] == opens_before + 1  # one parse pass

    def test_backward_seek_past_window_rewinds_exactly_once(
        self, cfg, tmp_path, rng
    ):
        path = tmp_path / "t.tsv"
        _write_tsv(path, 100, 4, rng)  # 25 batches > WINDOW_BATCHES
        source = CountingTsvTraceSource(path, cfg)
        far = source.batch(24).sparse_ids.copy()
        opens = source.counter["opens"]
        first = source.batch(0)  # 24 - 16 window: must rewind
        assert source.counter["opens"] == opens + 1
        # ... and exactly once: the rewound cursor serves batch 1 forward.
        source.batch(1)
        assert source.counter["opens"] == opens + 1
        assert np.array_equal(source.batch(24).sparse_ids, far)
        assert first.index == 0

    def test_window_covers_every_builtin_system_lookahead(self):
        """WINDOW_BATCHES must cover pipeline depth + future window.

        A pipelined run touches batches [i - depth, i + future_window]
        around its cursor; if the retention window were smaller, every
        pipeline cycle would trigger a full-file rewind.
        """
        from repro.api.registry import system_entries
        from repro.api.specs import PipelineSpec
        from repro.systems.scratchpipe_system import _STAGE_OFFSETS

        pipeline_depth = max(_STAGE_OFFSETS.values()) + 1
        default_future = PipelineSpec().future_window
        for entry in system_entries():
            future = default_future
            # A builtin carrying a wider default future window would show
            # up here; today all share PipelineSpec's default.
            assert future + pipeline_depth <= TsvTraceSource.WINDOW_BATCHES, (
                f"{entry.name}: lookahead {future + pipeline_depth} exceeds "
                f"the TSV retention window {TsvTraceSource.WINDOW_BATCHES}"
            )

    def test_pipeline_run_over_tsv_never_rewinds(self, tmp_path, rng):
        """End-to-end guard: a real pipelined run stays forward-only."""
        from repro.api import CacheSpec, SystemSpec, build_system
        from repro.hardware.spec import DEFAULT_HARDWARE

        cfg = tiny_config(rows_per_table=100, batch_size=4,
                          lookups_per_table=2, num_tables=2)
        path = tmp_path / "t.tsv"
        _write_tsv(path, 96, 4, rng)
        source = CountingTsvTraceSource(path, cfg)
        system = build_system(
            SystemSpec(system="scratchpipe", cache=CacheSpec(fraction=0.5)),
            cfg, DEFAULT_HARDWARE,
        )
        stats = system.simulate_cache(source)
        assert len(stats) == 24
        # counting pass + at most one forward parse pass (iter_chunks or
        # batch() may each reopen once, but nothing rewinds mid-run).
        assert source.counter["opens"] <= 3
        assert source.counter["bytes"] <= 2 * path.stat().st_size

"""Tests for the goodness-of-fit helpers (repro.data.conformance)."""

import numpy as np
import pytest

from repro.data.conformance import (
    bin_tail,
    chi_squared_critical,
    chi_squared_gof,
    ks_critical,
    ks_gof,
    normal_quantile,
)


class TestNormalQuantile:
    @pytest.mark.parametrize(
        "p,z",
        [
            (0.5, 0.0),
            (0.975, 1.959964),
            (0.999999, 4.753424),
            (0.025, -1.959964),
        ],
    )
    def test_known_values(self, p, z):
        assert normal_quantile(p) == pytest.approx(z, abs=1e-4)

    def test_domain(self):
        with pytest.raises(ValueError):
            normal_quantile(0.0)
        with pytest.raises(ValueError):
            normal_quantile(1.0)


class TestChiSquaredCritical:
    def test_against_tabulated_quantiles(self):
        # chi2 upper-0.05 quantiles from standard tables.
        assert chi_squared_critical(10, alpha=0.05) == pytest.approx(
            18.307, rel=0.01
        )
        assert chi_squared_critical(100, alpha=0.05) == pytest.approx(
            124.342, rel=0.01
        )

    def test_grows_with_dof_and_confidence(self):
        assert chi_squared_critical(50) > chi_squared_critical(10)
        assert chi_squared_critical(10, 1e-9) > chi_squared_critical(10, 1e-3)


class TestBinTail:
    def test_merges_cold_cells(self):
        probs = np.array([0.5, 0.3, 0.1, 0.05, 0.03, 0.02])
        counts = probs * 100
        merged_counts, merged_probs = bin_tail(counts, probs, 5.0, 100)
        assert merged_probs.sum() == pytest.approx(1.0)
        assert merged_counts.sum() == pytest.approx(100)
        assert (merged_probs * 100 >= 5.0 - 1e-9).all()

    def test_preserves_adequate_cells(self):
        probs = np.full(4, 0.25)
        counts = np.array([30.0, 20.0, 25.0, 25.0])
        merged_counts, merged_probs = bin_tail(counts, probs, 5.0, 100)
        assert merged_counts.size == 4


class TestChiSquaredGof:
    def test_accepts_the_true_model(self):
        rng = np.random.default_rng(7)
        probs = np.array([0.4, 0.3, 0.2, 0.1])
        samples = rng.choice(4, size=20_000, p=probs)
        counts = np.bincount(samples, minlength=4)
        assert chi_squared_gof(counts, probs).ok

    def test_rejects_a_wrong_model_decisively(self):
        rng = np.random.default_rng(7)
        probs = np.array([0.4, 0.3, 0.2, 0.1])
        samples = rng.choice(4, size=20_000, p=probs)
        counts = np.bincount(samples, minlength=4)
        wrong = np.full(4, 0.25)
        result = chi_squared_gof(counts, wrong)
        assert not result.ok
        assert result.statistic > 10 * result.critical

    def test_validates_inputs(self):
        with pytest.raises(ValueError, match="sum to 1"):
            chi_squared_gof([10, 10], [0.4, 0.4])
        with pytest.raises(ValueError, match="shape"):
            chi_squared_gof([10, 10], [0.5, 0.3, 0.2])


class TestKsGof:
    def test_accepts_the_true_model(self):
        rng = np.random.default_rng(3)
        probs = np.array([0.25, 0.25, 0.25, 0.25])
        samples = rng.choice(4, size=50_000, p=probs)
        assert ks_gof(samples, np.cumsum(probs)).ok

    def test_rejects_a_wrong_model(self):
        rng = np.random.default_rng(3)
        samples = rng.choice(4, size=50_000, p=[0.7, 0.1, 0.1, 0.1])
        result = ks_gof(samples, np.cumsum([0.25, 0.25, 0.25, 0.25]))
        assert not result.ok

    def test_critical_shrinks_with_n(self):
        assert ks_critical(10_000) < ks_critical(100)

"""Tests for the lookahead loader (repro.data.loader)."""

import numpy as np
import pytest

from repro.data.loader import LookaheadLoader
from repro.data.trace import make_dataset
from repro.model.config import tiny_config


@pytest.fixture
def dataset():
    cfg = tiny_config(rows_per_table=100, batch_size=4, lookups_per_table=2,
                      num_tables=2)
    return make_dataset(cfg, "medium", seed=11, num_batches=6)


class TestSequentialConsumption:
    def test_next_batch_order(self, dataset):
        loader = LookaheadLoader(dataset)
        assert [loader.next_batch().index for _ in range(6)] == list(range(6))

    def test_exhaustion_raises(self, dataset):
        loader = LookaheadLoader(dataset)
        for _ in range(6):
            loader.next_batch()
        with pytest.raises(StopIteration):
            loader.next_batch()

    def test_iter_protocol(self, dataset):
        loader = LookaheadLoader(dataset)
        assert [b.index for b in loader] == list(range(6))

    def test_cursor_tracks_consumption(self, dataset):
        loader = LookaheadLoader(dataset)
        assert loader.cursor == 0
        loader.next_batch()
        assert loader.cursor == 1


class TestLookahead:
    def test_future_batch_matches_dataset(self, dataset):
        loader = LookaheadLoader(dataset, lookahead=3)
        loader.next_batch()  # cursor -> 1
        peeked = loader.future_batch(2)
        assert peeked.index == 3
        assert np.array_equal(peeked.sparse_ids, dataset.batch(3).sparse_ids)

    def test_peek_does_not_consume(self, dataset):
        loader = LookaheadLoader(dataset, lookahead=2)
        loader.future_batch(1)
        assert loader.next_batch().index == 0

    def test_bound_enforced(self, dataset):
        loader = LookaheadLoader(dataset, lookahead=2)
        with pytest.raises(ValueError, match="exceeds declared lookahead"):
            loader.future_batch(3)

    def test_negative_offset_rejected(self, dataset):
        loader = LookaheadLoader(dataset)
        with pytest.raises(ValueError):
            loader.future_batch(-1)

    def test_past_end_returns_none(self, dataset):
        loader = LookaheadLoader(dataset, lookahead=8)
        for _ in range(5):
            loader.next_batch()
        assert loader.future_batch(0).index == 5
        assert loader.future_batch(1) is None

    def test_window_ids_union(self, dataset):
        loader = LookaheadLoader(dataset, lookahead=4)
        expected = np.unique(
            np.concatenate(
                [dataset.batch(0).table_ids(0), dataset.batch(1).table_ids(0)]
            )
        )
        got = loader.window_ids(0, [0, 1])
        assert np.array_equal(got, expected)

    def test_window_ids_past_end_empty(self, dataset):
        loader = LookaheadLoader(dataset, lookahead=10)
        for _ in range(6):
            loader.next_batch()
        assert loader.window_ids(0, [0, 1]).size == 0

    def test_invalid_lookahead_rejected(self, dataset):
        with pytest.raises(ValueError):
            LookaheadLoader(dataset, lookahead=-1)

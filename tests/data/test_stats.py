"""Tests for trace statistics (repro.data.stats)."""

import numpy as np
import pytest

from repro.data.datasets import locality_distribution
from repro.data.stats import (
    lru_hit_rate_curve,
    reuse_distances,
    trace_stats,
    working_set_curve,
)


class TestTraceStats:
    def test_simple_counts(self):
        stats = trace_stats(np.array([1, 1, 2, 3]))
        assert stats.total_lookups == 4
        assert stats.unique_rows == 3
        assert stats.single_use_fraction == pytest.approx(2 / 3)
        assert stats.mean_duplication == pytest.approx(4 / 3)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            trace_stats(np.array([]))

    def test_skew_increases_head_share(self):
        rng = np.random.default_rng(0)
        hot = locality_distribution("high", 100_000).sample(50_000, rng)
        cold = locality_distribution("random", 100_000).sample(50_000, rng)
        assert trace_stats(hot).top_1pct_share > trace_stats(cold).top_1pct_share

    def test_skewed_traces_have_large_single_use_tail(self):
        # Explains the ablation: even high-locality traces touch mostly
        # single-use rows, which no cache policy can hit.
        rng = np.random.default_rng(1)
        ids = locality_distribution("high", 1_000_000).sample(20_000, rng)
        assert trace_stats(ids).single_use_fraction > 0.5


class TestReuseDistances:
    def test_cold_misses_are_negative(self):
        distances = reuse_distances(np.array([5, 6, 7]))
        assert (distances == -1).all()

    def test_immediate_reuse_distance_zero(self):
        distances = reuse_distances(np.array([5, 5]))
        assert distances[1] == 0

    def test_textbook_example(self):
        # Stream a b c a: the second "a" has seen {b, c} since -> distance 2.
        distances = reuse_distances(np.array([1, 2, 3, 1]))
        assert distances.tolist() == [-1, -1, -1, 2]

    def test_distance_counts_distinct_not_total(self):
        # a b b b a: distinct rows between the two a's is just {b}.
        distances = reuse_distances(np.array([1, 2, 2, 2, 1]))
        assert distances[-1] == 1

    def test_matches_bruteforce(self):
        rng = np.random.default_rng(3)
        ids = rng.integers(0, 12, size=200)
        fast = reuse_distances(ids)
        last_seen = {}
        for position, row in enumerate(ids):
            if row in last_seen:
                seen = set(ids[last_seen[row] + 1: position].tolist())
                assert fast[position] == len(seen), position
            else:
                assert fast[position] == -1
            last_seen[row] = position


class TestLruCurve:
    def test_monotone_in_capacity(self):
        rng = np.random.default_rng(5)
        ids = locality_distribution("medium", 10_000).sample(5_000, rng)
        curve = lru_hit_rate_curve(ids, [10, 100, 1000, 10_000])
        assert np.all(np.diff(curve) >= 0)

    def test_infinite_capacity_equals_reuse_fraction(self):
        ids = np.array([1, 2, 1, 2, 3])
        curve = lru_hit_rate_curve(ids, [100])
        assert curve[0] == pytest.approx(2 / 5)

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            lru_hit_rate_curve(np.array([1, 2]), [0])

    def test_stack_property(self):
        # The LRU inclusion property: a capacity-C hit is also a hit at any
        # capacity > C, by construction of stack distances.
        rng = np.random.default_rng(7)
        ids = rng.integers(0, 50, size=2000)
        small, large = lru_hit_rate_curve(ids, [8, 32])
        assert large >= small


class TestWorkingSetCurve:
    def test_disjoint_batches_sum(self):
        batches = [np.array([1, 2]), np.array([3, 4]), np.array([5, 6])]
        curve = working_set_curve(batches, window_batches=2)
        assert curve.tolist() == [4, 4]

    def test_overlapping_batches_dedup(self):
        batches = [np.array([1, 2]), np.array([2, 3])]
        curve = working_set_curve(batches, window_batches=2)
        assert curve.tolist() == [3]

    def test_window_validated(self):
        with pytest.raises(ValueError):
            working_set_curve([np.array([1])], window_batches=0)

    def test_bounded_by_vi_d_formula(self):
        from repro.core.scratchpad import required_slots
        from repro.data.trace import make_dataset
        from repro.model.config import tiny_config

        cfg = tiny_config(rows_per_table=5000, batch_size=16,
                          lookups_per_table=4, num_tables=1)
        dataset = make_dataset(cfg, "random", seed=2, num_batches=12)
        batches = [dataset.batch(i).table_ids(0) for i in range(12)]
        curve = working_set_curve(batches, window_batches=6)
        assert curve.max() <= required_slots(cfg, window_batches=6)

"""Behavioural tests for the scenario engine (repro.data.scenarios)."""

import numpy as np
import pytest

from repro.data.scenarios import (
    SCENARIO_PRESETS,
    BurstSpec,
    ChurnSpec,
    CorrelationSpec,
    DiurnalSpec,
    DriftSpec,
    ReshuffleSpec,
    ScenarioDataset,
    ScenarioSpec,
    ScenarioSpecError,
    TsvTraceSource,
    build_scenario,
    scenario_by_name,
)
from repro.data.trace import MaterialisedDataset, make_dataset
from repro.model.config import tiny_config


@pytest.fixture
def cfg():
    return tiny_config(
        rows_per_table=1000, batch_size=16, lookups_per_table=4, num_tables=2
    )


class TestSpecValidation:
    def test_unknown_locality_rejected(self):
        with pytest.raises(ScenarioSpecError, match="locality"):
            ScenarioSpec(locality="warp")

    def test_drift_rate_positive(self):
        with pytest.raises(ScenarioSpecError, match="drift rate"):
            DriftSpec(rate=0.0)

    def test_churn_bounds(self):
        with pytest.raises(ScenarioSpecError, match="hot_fraction"):
            ChurnSpec(hot_fraction=0.0)
        with pytest.raises(ScenarioSpecError, match="period"):
            ChurnSpec(period=0)

    def test_burst_bounds(self):
        with pytest.raises(ScenarioSpecError, match="duration"):
            BurstSpec(period=4, duration=5)
        with pytest.raises(ScenarioSpecError, match="share"):
            BurstSpec(share=0.0)
        with pytest.raises(ScenarioSpecError, match="rows"):
            BurstSpec(rows=0)

    def test_diurnal_bounds(self):
        with pytest.raises(ScenarioSpecError, match="exponents"):
            DiurnalSpec(low=0.9, high=0.4)
        with pytest.raises(ScenarioSpecError, match="exponents"):
            DiurnalSpec(low=0.0, high=0.5)

    def test_diurnal_on_random_is_noop(self):
        """Uniform bases have no skew to modulate — figures sweeping all
        locality classes must stay runnable under a diurnal scenario."""
        cfg = tiny_config(
            rows_per_table=1000, batch_size=16, lookups_per_table=4,
            num_tables=2,
        )
        spec = ScenarioSpec(locality="random", diurnal=DiurnalSpec())
        plain = ScenarioSpec(locality="random")
        a = build_scenario(cfg, spec, seed=1, num_batches=3)
        b = build_scenario(cfg, plain, seed=1, num_batches=3)
        for i in range(3):
            assert np.array_equal(a.batch(i).sparse_ids, b.batch(i).sparse_ids)

    def test_correlation_bounds(self):
        with pytest.raises(ScenarioSpecError, match="rho"):
            CorrelationSpec(rho=1.5)

    def test_reshuffle_bounds(self):
        with pytest.raises(ScenarioSpecError, match="epoch_batches"):
            ReshuffleSpec(epoch_batches=0)

    def test_unknown_preset_rejected(self):
        with pytest.raises(ScenarioSpecError, match="unknown scenario"):
            scenario_by_name("does-not-exist")

    def test_presets_resolve(self):
        for name in SCENARIO_PRESETS:
            assert scenario_by_name(name) is SCENARIO_PRESETS[name]

    def test_with_locality(self):
        spec = ScenarioSpec(drift=DriftSpec(rate=2.0))
        high = spec.with_locality("high")
        assert high.locality == "high" and high.drift == spec.drift

    def test_specs_hashable_and_comparable(self):
        a = ScenarioSpec(drift=DriftSpec(rate=2.0))
        b = ScenarioSpec(drift=DriftSpec(rate=2.0))
        assert a == b and hash(a) == hash(b)
        assert len({a, b}) == 1


class TestStationaryEquivalence:
    def test_bit_identical_to_synthetic_dataset(self, cfg):
        scenario = build_scenario(
            cfg, ScenarioSpec(locality="medium"), seed=3, num_batches=8
        )
        legacy = make_dataset(cfg, "medium", seed=3, num_batches=8)
        for i in range(8):
            assert np.array_equal(
                scenario.batch(i).sparse_ids, legacy.batch(i).sparse_ids
            )

    def test_with_dense_bit_identical(self, cfg):
        scenario = ScenarioDataset(
            cfg, ScenarioSpec(locality="low"), seed=5, num_batches=4,
            with_dense=True,
        )
        legacy = make_dataset(cfg, "low", seed=5, num_batches=4, with_dense=True)
        batch = scenario.batch(2)
        ref = legacy.batch(2)
        assert np.array_equal(batch.sparse_ids, ref.sparse_ids)
        assert np.array_equal(batch.dense, ref.dense)
        assert np.array_equal(batch.labels, ref.labels)


class TestProcessBehaviour:
    def test_all_presets_deterministic_and_in_range(self, cfg):
        for name, spec in SCENARIO_PRESETS.items():
            a = build_scenario(cfg, spec, seed=1, num_batches=6)
            b = build_scenario(cfg, spec, seed=1, num_batches=6)
            for i in range(6):
                ids = a.batch(i).sparse_ids
                assert np.array_equal(ids, b.batch(i).sparse_ids), name
                assert ids.min() >= 0 and ids.max() < cfg.rows_per_table, name

    def test_drift_rotates_the_head(self, cfg):
        spec = ScenarioSpec(locality="high", drift=DriftSpec(rate=100))
        source = build_scenario(cfg, spec, seed=0, num_batches=10)
        # With rank==row at batch 0 the head sits at row 0; by batch 5 the
        # rotation has moved it 500 rows along.
        head_0 = np.bincount(
            source.batch(0).table_ids(0), minlength=1000
        ).argmax()
        head_5 = np.bincount(
            source.batch(5).table_ids(0), minlength=1000
        ).argmax()
        assert head_0 < 100
        assert 400 <= head_5 < 600

    def test_churn_replaces_hot_rows_gradually(self):
        cfg = tiny_config(
            rows_per_table=1000, batch_size=512, lookups_per_table=4,
            num_tables=1,
        )
        spec = ScenarioSpec(
            locality="high", churn=ChurnSpec(hot_fraction=0.05, period=8)
        )
        source = build_scenario(cfg, spec, seed=0, num_batches=64)

        def hot_rows(index):
            counts = np.bincount(source.batch(index).table_ids(0), minlength=1000)
            return set(np.argsort(counts)[-10:].tolist())

        near = len(hot_rows(0) & hot_rows(1))
        far = len(hot_rows(0) & hot_rows(48))
        # Adjacent batches share most of the hot set; across six full churn
        # periods nearly every hot row has been re-homed.
        assert near >= 5
        assert far < near

    def test_burst_rows_dominate_burst_window(self, cfg):
        spec = ScenarioSpec(
            locality="random",
            burst=BurstSpec(period=16, duration=4, share=0.6, rows=4),
        )
        source = build_scenario(cfg, spec, seed=0, num_batches=32)
        in_burst = source.batch(1).table_ids(0)
        counts = np.bincount(in_burst, minlength=1000)
        top4_share = np.sort(counts)[-4:].sum() / in_burst.size
        assert top4_share > 0.4  # ~0.6 nominal
        off_burst = source.batch(10).table_ids(0)
        off_counts = np.bincount(off_burst, minlength=1000)
        assert np.sort(off_counts)[-4:].sum() / off_burst.size < 0.3

    def test_diurnal_skew_oscillates(self, cfg):
        spec = ScenarioSpec(
            locality="medium",
            diurnal=DiurnalSpec(low=0.3, high=0.9, period=16),
        )
        source = build_scenario(cfg, spec, seed=0, num_batches=16)

        def head_mass(index):
            ids = source.batch(index).table_ids(0)
            return (ids < 20).mean()  # hottest 2% of 1000 rows

        # Peak skew at phase 0, trough at phase period/2.
        assert head_mass(0) > head_mass(8) + 0.1

    def test_correlation_couples_tables(self, cfg):
        spec = ScenarioSpec(
            locality="high", correlation=CorrelationSpec(rho=0.8)
        )
        source = build_scenario(cfg, spec, seed=0, num_batches=2)
        batch = source.batch(0)
        coupled = (batch.table_ids(0) == batch.table_ids(1)).mean()
        assert coupled > 0.7
        uncorrelated = build_scenario(
            cfg, ScenarioSpec(locality="high"), seed=0, num_batches=2
        ).batch(0)
        baseline = (
            uncorrelated.table_ids(0) == uncorrelated.table_ids(1)
        ).mean()
        assert coupled > baseline + 0.3

    def test_reshuffle_replays_epoch_content(self, cfg):
        spec = ScenarioSpec(
            locality="medium", reshuffle=ReshuffleSpec(epoch_batches=6)
        )
        source = build_scenario(cfg, spec, seed=0, num_batches=18)
        epochs = [
            sorted(
                source.batch(e * 6 + i).sparse_ids.tobytes() for i in range(6)
            )
            for e in range(3)
        ]
        assert epochs[0] == epochs[1] == epochs[2]
        # And later epochs are actually shuffled, not replayed in order.
        order_1 = [source.batch(6 + i).sparse_ids.tobytes() for i in range(6)]
        order_0 = [source.batch(i).sparse_ids.tobytes() for i in range(6)]
        assert order_0 != order_1

    def test_batch_index_is_position_not_content(self, cfg):
        spec = ScenarioSpec(
            locality="medium", reshuffle=ReshuffleSpec(epoch_batches=4)
        )
        source = build_scenario(cfg, spec, seed=0, num_batches=12)
        assert [source.batch(i).index for i in range(12)] == list(range(12))

    def test_out_of_range_index(self, cfg):
        source = build_scenario(cfg, ScenarioSpec(), seed=0, num_batches=4)
        with pytest.raises(IndexError):
            source.batch(4)
        with pytest.raises(IndexError):
            source.batch(-1)

    def test_materialises_like_any_source(self, cfg):
        spec = SCENARIO_PRESETS["kitchen-sink"]
        source = build_scenario(cfg, spec, seed=2, num_batches=10)
        mat = MaterialisedDataset(source, num_batches=7)
        assert len(mat) == 7
        for i in range(7):
            assert np.array_equal(
                mat.batch(i).sparse_ids, source.batch(i).sparse_ids
            )


def _write_tsv(path, num_lines, num_cats, rng):
    with open(path, "w", encoding="utf-8") as fh:
        for _ in range(num_lines):
            cats = [f"tok{rng.integers(0, 40)}" for _ in range(num_cats)]
            fields = ["1"] + [str(d) for d in range(13)] + cats
            fh.write("\t".join(fields) + "\n")


class TestTsvTraceSource:
    @pytest.fixture
    def tsv_cfg(self):
        return tiny_config(
            rows_per_table=100, batch_size=4, lookups_per_table=2, num_tables=2
        )

    def test_batches_and_geometry(self, tsv_cfg, tmp_path, rng):
        path = tmp_path / "trace.tsv"
        _write_tsv(path, 22, 4, rng)
        source = TsvTraceSource(path, tsv_cfg)
        assert len(source) == 5  # 22 samples // 4 per batch
        batch = source.batch(0)
        assert batch.sparse_ids.shape == (2, 4, 2)
        assert batch.sparse_ids.min() >= 0
        assert batch.sparse_ids.max() < tsv_cfg.rows_per_table

    def test_deterministic_across_instances(self, tsv_cfg, tmp_path, rng):
        path = tmp_path / "trace.tsv"
        _write_tsv(path, 16, 4, rng)
        a = TsvTraceSource(path, tsv_cfg)
        b = TsvTraceSource(path, tsv_cfg)
        for i in range(len(a)):
            assert np.array_equal(a.batch(i).sparse_ids, b.batch(i).sparse_ids)

    def test_backward_seek_rewinds(self, tsv_cfg, tmp_path, rng):
        path = tmp_path / "trace.tsv"
        _write_tsv(path, 16, 4, rng)
        source = TsvTraceSource(path, tsv_cfg)
        last = source.batch(3).sparse_ids.copy()
        first = source.batch(0).sparse_ids.copy()
        assert np.array_equal(source.batch(3).sparse_ids, last)
        assert np.array_equal(source.batch(0).sparse_ids, first)

    def test_same_token_same_row_different_tables_differ(
        self, tsv_cfg, tmp_path
    ):
        path = tmp_path / "trace.tsv"
        with open(path, "w", encoding="utf-8") as fh:
            for _ in range(4):
                fields = ["0"] + [str(d) for d in range(13)] + ["x", "x", "x", "x"]
                fh.write("\t".join(fields) + "\n")
        source = TsvTraceSource(path, tsv_cfg)
        batch = source.batch(0)
        # Within a table the same token hashes to one row...
        assert len(set(batch.table_ids(0).tolist())) == 1
        # ...but tables hash independently.
        assert batch.table_ids(0)[0] != batch.table_ids(1)[0]

    def test_with_dense_parses_label_and_features(self, tsv_cfg, tmp_path, rng):
        path = tmp_path / "trace.tsv"
        _write_tsv(path, 8, 4, rng)
        # The file carries 13 dense columns but the tiny config expects 4;
        # the truncate/zero-fill mapping is now an explicit opt-in.
        source = TsvTraceSource(
            path, tsv_cfg, with_dense=True, allow_dense_pad=True
        )
        batch = source.batch(0)
        assert batch.labels.shape == (4,)
        assert (batch.labels == 1.0).all()
        assert batch.dense.shape == (4, tsv_cfg.num_dense_features)

    def test_too_few_columns_rejected(self, tsv_cfg, tmp_path):
        path = tmp_path / "short.tsv"
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("1\t2\t3\n")
        with pytest.raises(ValueError, match="fields"):
            TsvTraceSource(path, tsv_cfg)

    def test_too_few_samples_rejected(self, tsv_cfg, tmp_path, rng):
        path = tmp_path / "tiny.tsv"
        _write_tsv(path, 3, 4, rng)  # < one batch of 4
        with pytest.raises(ValueError, match="fewer than one"):
            TsvTraceSource(path, tsv_cfg)

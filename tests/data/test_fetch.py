"""Tests for the fetch-and-verify helper (repro.data.fetch)."""

import http.client
import io
import urllib.error

import numpy as np
import pytest

from repro.data.fetch import (
    ChecksumMismatchError,
    KNOWN_TRACES,
    SAMPLE_FIXTURE_PATH,
    SAMPLE_FIXTURE_SHA256,
    TRACE_DIR_ENV,
    fetch_trace,
    generate_sample_tsv,
    resolve_trace,
    trace_dir,
)
from repro.testing.faults import FaultSpec, injected_faults, injection_count
from repro.data.io import (
    InvalidTraceFileSpecError,
    TraceVerificationError,
    compile_trace,
    sha256_file,
)
from repro.data.trace import MaterialisedDataset, make_dataset
from repro.model.config import ModelConfig, tiny_config


class FakeServer:
    """Range-aware urlopen stand-in serving one payload from memory."""

    def __init__(self, payload: bytes, honour_range: bool = True,
                 fail_after: int = None):
        self.payload = payload
        self.honour_range = honour_range
        self.fail_after = fail_after
        self.requests = []

    def __call__(self, request):
        range_header = request.get_header("Range")
        self.requests.append(range_header)
        start = 0
        status = 200
        if range_header and self.honour_range:
            start = int(range_header.split("=")[1].rstrip("-"))
            status = 206
        body = self.payload[start:]
        if self.fail_after is not None:
            body = body[: self.fail_after]
        response = io.BytesIO(body)
        response.status = status
        return response


@pytest.fixture
def payload():
    return b"criteo-bytes-" * 4096


@pytest.fixture
def pin(payload, tmp_path):
    probe = tmp_path / "probe"
    probe.write_bytes(payload)
    return sha256_file(probe)


class TestLocalPaths:
    def test_existing_file_verifies_in_place(self, tmp_path, payload, pin):
        path = tmp_path / "trace.bin"
        path.write_bytes(payload)
        assert fetch_trace(path, sha256=pin) == path

    def test_mismatch_raises(self, tmp_path, payload):
        path = tmp_path / "trace.bin"
        path.write_bytes(payload)
        with pytest.raises(TraceVerificationError, match="mismatch"):
            fetch_trace(path, sha256="0" * 64)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            fetch_trace(tmp_path / "nope.bin")

    def test_trace_dir_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv(TRACE_DIR_ENV, str(tmp_path / "offline"))
        assert trace_dir() == tmp_path / "offline"


class TestDownload:
    URL = "https://example.invalid/trace.bin"

    def test_download_and_verify(self, tmp_path, payload, pin):
        server = FakeServer(payload)
        dest = tmp_path / "trace.bin"
        out = fetch_trace(self.URL, sha256=pin, dest=dest, opener=server)
        assert out == dest
        assert dest.read_bytes() == payload
        assert server.requests == [None]

    def test_never_redownloads_verified_file(self, tmp_path, payload, pin,
                                             monkeypatch):
        monkeypatch.setenv(TRACE_DIR_ENV, str(tmp_path))
        server = FakeServer(payload)
        first = fetch_trace(self.URL, sha256=pin, opener=server)
        again = fetch_trace(self.URL, sha256=pin, opener=server)
        assert first == again == tmp_path / "trace.bin"
        assert len(server.requests) == 1  # second call hit no network

    def test_offline_dir_skips_network(self, tmp_path, payload, pin,
                                       monkeypatch):
        monkeypatch.setenv(TRACE_DIR_ENV, str(tmp_path))
        (tmp_path / "trace.bin").write_bytes(payload)

        def no_network(request):  # pragma: no cover - must not run
            raise AssertionError("network touched despite offline copy")

        out = fetch_trace(self.URL, sha256=pin, opener=no_network)
        assert out == tmp_path / "trace.bin"

    def test_resume_from_partial(self, tmp_path, payload, pin):
        dest = tmp_path / "trace.bin"
        part = tmp_path / "trace.bin.part"
        part.write_bytes(payload[:10_000])
        server = FakeServer(payload)
        out = fetch_trace(self.URL, sha256=pin, dest=dest, opener=server)
        assert out.read_bytes() == payload
        assert server.requests == ["bytes=10000-"]
        assert not part.exists()

    def test_interrupted_then_resumed(self, tmp_path, payload, pin):
        dest = tmp_path / "trace.bin"
        flaky = FakeServer(payload, fail_after=7_000)
        with pytest.raises(TraceVerificationError):
            # The truncated body fails verification; the .part would
            # normally survive a *connection* abort — emulate that by
            # reinstating the partial bytes.
            fetch_trace(self.URL, sha256=pin, dest=dest, opener=flaky)
        (tmp_path / "trace.bin.part").write_bytes(payload[:7_000])
        server = FakeServer(payload)
        out = fetch_trace(self.URL, sha256=pin, dest=dest, opener=server)
        assert out.read_bytes() == payload
        assert server.requests == ["bytes=7000-"]

    def test_server_without_range_restarts(self, tmp_path, payload, pin):
        dest = tmp_path / "trace.bin"
        (tmp_path / "trace.bin.part").write_bytes(b"junk-prefix")
        server = FakeServer(payload, honour_range=False)
        out = fetch_trace(self.URL, sha256=pin, dest=dest, opener=server)
        assert out.read_bytes() == payload  # 200 response replaced the part

    def test_corrupt_download_discarded(self, tmp_path, payload):
        dest = tmp_path / "trace.bin"
        server = FakeServer(payload)
        with pytest.raises(TraceVerificationError, match="pinned"):
            fetch_trace(self.URL, sha256="0" * 64, dest=dest, opener=server)
        assert not dest.exists()
        assert not (tmp_path / "trace.bin.part").exists()

    def test_mismatch_error_is_the_named_subclass(self, tmp_path, payload):
        dest = tmp_path / "trace.bin"
        server = FakeServer(payload)
        with pytest.raises(ChecksumMismatchError):
            fetch_trace(self.URL, sha256="0" * 64, dest=dest, opener=server)
        assert issubclass(ChecksumMismatchError, TraceVerificationError)


class DroppingResponse:
    """Response that serves a byte prefix, then drops the connection."""

    def __init__(self, body: bytes, serve: int):
        self.body = body
        self.serve = serve
        self.status = 200
        self.served = False

    def read(self, size=-1):
        if not self.served:
            self.served = True
            return self.body[: self.serve]
        raise http.client.IncompleteRead(b"")

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


class TestRetries:
    URL = "https://example.invalid/trace.bin"

    def test_transient_errors_retry_then_succeed(self, tmp_path, payload,
                                                 pin):
        server = FakeServer(payload)
        attempts = {"n": 0}

        def flaky(request):
            attempts["n"] += 1
            if attempts["n"] <= 2:
                raise urllib.error.URLError("connection reset")
            return server(request)

        sleeps = []
        dest = tmp_path / "trace.bin"
        out = fetch_trace(self.URL, sha256=pin, dest=dest, opener=flaky,
                          backoff_s=0.1, sleep=sleeps.append)
        assert out.read_bytes() == payload
        assert attempts["n"] == 3
        assert sleeps == [0.1, 0.2]  # exponential schedule, no real waiting

    def test_partial_bytes_bank_across_attempts(self, tmp_path, payload,
                                                pin):
        """A connection drop keeps its bytes; the retry resumes from them."""
        server = FakeServer(payload)
        ranges = []

        def dropping(request):
            ranges.append(request.get_header("Range"))
            if len(ranges) == 1:
                return DroppingResponse(payload, serve=7_000)
            return server(request)

        dest = tmp_path / "trace.bin"
        out = fetch_trace(self.URL, sha256=pin, dest=dest, opener=dropping,
                          sleep=lambda s: None)
        assert out.read_bytes() == payload
        # Attempt 1 had no .part; attempt 2 resumed from the banked bytes.
        assert ranges == [None, "bytes=7000-"]

    def test_gives_up_after_n_retries(self, tmp_path):
        def dead(request):
            raise urllib.error.URLError("no route to host")

        sleeps = []
        with pytest.raises(urllib.error.URLError):
            fetch_trace(self.URL, dest=tmp_path / "trace.bin", opener=dead,
                        retries=3, backoff_s=0.5, sleep=sleeps.append)
        assert sleeps == [0.5, 1.0, 2.0]  # N sleeps, then the raise

    def test_http_errors_are_not_retried(self, tmp_path):
        attempts = {"n": 0}

        def gone(request):
            attempts["n"] += 1
            raise urllib.error.HTTPError(self.URL, 404, "gone", None, None)

        with pytest.raises(urllib.error.HTTPError):
            fetch_trace(self.URL, dest=tmp_path / "trace.bin", opener=gone,
                        sleep=lambda s: pytest.fail("retried a 404"))
        assert attempts["n"] == 1

    def test_injected_read_faults_are_retried(self, tmp_path, payload, pin):
        """The fault injector drives the same retry path end to end."""
        server = FakeServer(payload)
        dest = tmp_path / "trace.bin"
        with injected_faults(
            FaultSpec(site="fetch.read", mode="error", times=2),
            state_dir=tmp_path / "faults",
        ):
            out = fetch_trace(self.URL, sha256=pin, dest=dest, opener=server,
                              sleep=lambda s: None)
        assert out.read_bytes() == payload
        assert injection_count(str(tmp_path / "faults")) == 2


class TestSampleFixture:
    def test_fixture_matches_pinned_sha(self):
        assert SAMPLE_FIXTURE_PATH.exists()
        assert sha256_file(SAMPLE_FIXTURE_PATH) == SAMPLE_FIXTURE_SHA256

    def test_generation_is_deterministic(self, tmp_path):
        regenerated = generate_sample_tsv(tmp_path / "regen.tsv")
        assert sha256_file(regenerated) == SAMPLE_FIXTURE_SHA256

    def test_sample_opens_and_parses(self):
        spec = KNOWN_TRACES["criteo-sample"].spec
        config = spec.configure(ModelConfig())
        source = spec.open(config)
        assert len(source) == 15
        batch = source.batch(0)
        assert batch.sparse_ids.shape == (8, 128, 3)
        assert batch.sparse_ids.min() >= 0
        assert batch.sparse_ids.max() < config.rows_per_table


class TestResolveTrace:
    def test_known_name(self):
        spec = resolve_trace("criteo-sample")
        assert spec.sha256 == SAMPLE_FIXTURE_SHA256
        assert spec.format == "tsv"

    def test_max_batches_threaded(self):
        assert resolve_trace("criteo-sample", max_batches=3).max_batches == 3

    def test_unknown_name_lists_registry(self):
        with pytest.raises(InvalidTraceFileSpecError, match="criteo-sample"):
            resolve_trace("not-a-trace")

    def test_compiled_path_uses_header_geometry(self, tmp_path):
        cfg = tiny_config(rows_per_table=200, batch_size=4,
                          lookups_per_table=2, num_tables=2)
        source = make_dataset(cfg, "medium", seed=1, num_batches=5)
        path = compile_trace(source, tmp_path / "t.rtrc")
        spec = resolve_trace(str(path))
        configured = spec.configure(ModelConfig())
        assert configured.batch_size == 4
        assert configured.rows_per_table == 200
        loaded = spec.open(configured)
        reference = MaterialisedDataset(source)
        assert np.array_equal(loaded.batch(2).sparse_ids,
                              reference.batch(2).sparse_ids)

    def test_tsv_path_gets_sample_geometry(self, tmp_path):
        path = generate_sample_tsv(tmp_path / "mine.tsv", num_lines=300)
        spec = resolve_trace(str(path))
        assert spec.batch_size == 128
        assert spec.num_tables == 8

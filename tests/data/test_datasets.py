"""Tests for dataset profiles (repro.data.datasets)."""

import pytest

from repro.data.datasets import (
    ALIBABA,
    CRITEO,
    DATASET_PROFILES,
    LOCALITY_CLASSES,
    dataset_by_name,
    locality_distribution,
)
from repro.data.distributions import UniformDistribution, ZipfDistribution


class TestDatasetProfiles:
    def test_four_profiles(self):
        assert len(DATASET_PROFILES) == 4

    def test_paper_anchor_points(self):
        criteo = CRITEO.distribution(10**7)
        alibaba = ALIBABA.distribution(10**7)
        # Section III-A quotes: Criteo 2% -> >80%, Alibaba 2% -> 8.5%.
        assert criteo.hit_rate(0.02) > 0.80
        assert alibaba.hit_rate(0.02) == pytest.approx(0.085, abs=0.005)

    def test_alibaba_needs_most_cache_for_90pct(self):
        # Figure 6(a): low-locality Alibaba needs the majority of the table
        # cached to exceed 90% hit rate.
        alibaba = ALIBABA.distribution(10**7)
        assert alibaba.hit_rate(0.65) < 0.90 or alibaba.hit_rate(0.5) < 0.90

    def test_lookup_by_name(self):
        assert dataset_by_name("criteo") is CRITEO
        assert dataset_by_name("Alibaba") is ALIBABA

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown dataset"):
            dataset_by_name("netflix")


class TestLocalityDistribution:
    def test_random_is_uniform(self):
        dist = locality_distribution("random", 1000)
        assert isinstance(dist, UniformDistribution)

    @pytest.mark.parametrize("locality", ["low", "medium", "high"])
    def test_power_law_classes(self, locality):
        dist = locality_distribution(locality, 1000)
        assert isinstance(dist, ZipfDistribution)

    def test_locality_ordering(self):
        # The four benchmark classes must be strictly ordered by the hit
        # rate a 2% cache achieves (this ordering drives Figures 12-14).
        rates = [
            locality_distribution(c, 10**7).hit_rate(0.02)
            for c in LOCALITY_CLASSES
        ]
        assert rates == sorted(rates)
        assert rates[0] == pytest.approx(0.02)  # random
        assert rates[-1] > 0.80  # high (Criteo-like)

    def test_unknown_locality_rejected(self):
        with pytest.raises(ValueError, match="unknown locality"):
            locality_distribution("extreme", 1000)


class TestCriteoPerTableProfile:
    """Figure 6(d): individual Criteo tables have very different locality."""

    def test_profiled_tables_available(self):
        from repro.data.datasets import (
            CRITEO_TABLE_EXPONENTS,
            criteo_table_distributions,
        )

        dists = criteo_table_distributions(10**6)
        assert set(dists) == set(CRITEO_TABLE_EXPONENTS)

    def test_knees_spread(self):
        from repro.data.datasets import criteo_table_distributions

        dists = criteo_table_distributions(10**6)
        rates = {t: d.hit_rate(0.02) for t, d in dists.items()}
        # Table 0 is far hotter than table 21 (Figure 6(d)'s spread).
        assert rates[0] > 0.85
        assert rates[21] < 0.25
        # Monotone in the profiled exponent order.
        ordered = [rates[t] for t in sorted(rates)]
        assert ordered == sorted(ordered, reverse=True)

    def test_unknown_table_rejected(self):
        from repro.data.datasets import criteo_table_distributions

        with pytest.raises(ValueError, match="no profiled exponent"):
            criteo_table_distributions(100, tables=(5,))

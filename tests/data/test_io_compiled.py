"""Tests for the compiled binary trace format and TraceFileSpec."""

import pickle

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data.io import (
    COMPILED_MAGIC,
    CompiledTraceSource,
    InvalidTraceFileSpecError,
    TraceFileSpec,
    TraceVerificationError,
    compile_trace,
    sha256_file,
    sniff_trace_format,
    save_trace,
)
from repro.data.trace import MaterialisedDataset, make_dataset
from repro.data.tsv import TsvTraceSource
from repro.model.config import tiny_config


@pytest.fixture
def cfg():
    return tiny_config(rows_per_table=300, batch_size=4, lookups_per_table=2,
                       num_tables=2)


def _write_tsv(path, num_lines, num_cats, rng):
    with open(path, "w", encoding="utf-8") as fh:
        for _ in range(num_lines):
            cats = [f"tok{rng.integers(0, 40)}" for _ in range(num_cats)]
            fields = ["1"] + [str(d) for d in range(13)] + cats
            fh.write("\t".join(fields) + "\n")


def assert_batches_equal(a, b):
    assert np.array_equal(a.sparse_ids, b.sparse_ids)
    assert (a.dense is None) == (b.dense is None)
    if a.dense is not None:
        assert np.array_equal(a.dense, b.dense)
        assert np.array_equal(a.labels, b.labels)


class TestRoundTrip:
    def test_bit_identical_to_materialised(self, cfg, tmp_path):
        source = make_dataset(cfg, "medium", seed=3, num_batches=9)
        reference = MaterialisedDataset(source)
        compiled = CompiledTraceSource(
            compile_trace(source, tmp_path / "t.rtrc"), config=cfg
        )
        assert len(compiled) == len(reference) == 9
        for i in range(9):
            assert_batches_equal(compiled.batch(i), reference.batch(i))

    def test_round_trip_after_reset_and_reiteration(self, cfg, tmp_path):
        source = make_dataset(cfg, "medium", seed=5, num_batches=7)
        reference = MaterialisedDataset(source)
        compiled = CompiledTraceSource(
            compile_trace(source, tmp_path / "t.rtrc"), config=cfg
        )
        first = [b.sparse_ids.copy() for chunk in
                 compiled.iter_chunks(chunk_batches=3) for b in chunk]
        compiled.reset()
        second = [b.sparse_ids.copy() for chunk in
                  compiled.iter_chunks(chunk_batches=2) for b in chunk]
        for i in range(7):
            assert np.array_equal(first[i], second[i])
            assert np.array_equal(first[i], reference.batch(i).sparse_ids)

    def test_dense_round_trip(self, cfg, tmp_path):
        source = make_dataset(cfg, "medium", seed=2, num_batches=4,
                              with_dense=True)
        reference = MaterialisedDataset(source)
        compiled = CompiledTraceSource(
            compile_trace(source, tmp_path / "t.rtrc"), config=cfg
        )
        for i in range(4):
            assert_batches_equal(compiled.batch(i), reference.batch(i))

    def test_tsv_round_trip(self, cfg, tmp_path, rng):
        path = tmp_path / "t.tsv"
        _write_tsv(path, 30, 4, rng)
        source = TsvTraceSource(path, cfg)
        compiled_path = compile_trace(source, tmp_path / "t.rtrc")
        reference = MaterialisedDataset(TsvTraceSource(path, cfg))
        compiled = CompiledTraceSource(compiled_path, config=cfg)
        assert len(compiled) == len(reference)
        for i in range(len(compiled)):
            assert_batches_equal(compiled.batch(i), reference.batch(i))

    @settings(max_examples=6, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        locality=st.sampled_from(["random", "low", "medium", "high"]),
        num_batches=st.integers(min_value=1, max_value=12),
    )
    def test_round_trip_property(self, tmp_path_factory, seed, locality,
                                 num_batches):
        cfg = tiny_config(rows_per_table=200, batch_size=4,
                          lookups_per_table=3, num_tables=2)
        source = make_dataset(cfg, locality, seed=seed,
                              num_batches=num_batches)
        reference = MaterialisedDataset(source)
        out = tmp_path_factory.mktemp("ctrace") / "t.rtrc"
        compiled = CompiledTraceSource(compile_trace(source, out), config=cfg)
        for i in range(num_batches):
            assert_batches_equal(compiled.batch(i), reference.batch(i))


class TestRandomAccess:
    def test_any_access_order(self, cfg, tmp_path):
        source = make_dataset(cfg, "medium", seed=1, num_batches=20)
        reference = MaterialisedDataset(source)
        compiled = CompiledTraceSource(
            compile_trace(source, tmp_path / "t.rtrc"), config=cfg
        )
        for i in (19, 0, 10, 3, 18, 1, 19, 0):
            assert np.array_equal(
                compiled.batch(i).sparse_ids, reference.batch(i).sparse_ids
            )

    def test_zero_copy_views(self, cfg, tmp_path):
        source = make_dataset(cfg, "medium", seed=1, num_batches=5)
        compiled = CompiledTraceSource(
            compile_trace(source, tmp_path / "t.rtrc"), config=cfg
        )
        batch = compiled.batch(3)
        # The batch is a view of the memmap (no per-access copy) and the
        # read-only mapping enforces the MiniBatch immutability contract.
        assert np.shares_memory(batch.sparse_ids, compiled._sparse)
        with pytest.raises((ValueError, OSError)):
            batch.sparse_ids[0, 0, 0] = 1

    def test_constant_state_no_cursor(self, cfg, tmp_path):
        """Backward access needs no rewind: batch() is a pure function."""
        source = make_dataset(cfg, "medium", seed=1, num_batches=8)
        compiled = CompiledTraceSource(
            compile_trace(source, tmp_path / "t.rtrc"), config=cfg
        )
        late = compiled.batch(7).sparse_ids.copy()
        early = compiled.batch(0).sparse_ids.copy()
        assert np.array_equal(compiled.batch(7).sparse_ids, late)
        assert np.array_equal(compiled.batch(0).sparse_ids, early)

    def test_max_batches_caps_length(self, cfg, tmp_path):
        source = make_dataset(cfg, "medium", seed=1, num_batches=9)
        path = compile_trace(source, tmp_path / "t.rtrc")
        capped = CompiledTraceSource(path, config=cfg, max_batches=4)
        assert len(capped) == 4
        with pytest.raises(IndexError):
            capped.batch(4)


class TestFormatValidation:
    def test_bad_magic_rejected(self, cfg, tmp_path):
        path = tmp_path / "junk.rtrc"
        path.write_bytes(b"not a trace at all" * 4)
        with pytest.raises(ValueError, match="magic"):
            CompiledTraceSource(path)

    def test_geometry_mismatch_rejected(self, cfg, tmp_path):
        source = make_dataset(cfg, "medium", seed=1, num_batches=3)
        path = compile_trace(source, tmp_path / "t.rtrc")
        other = tiny_config(rows_per_table=300, batch_size=8,
                            lookups_per_table=2, num_tables=2)
        with pytest.raises(ValueError, match="batch_size"):
            CompiledTraceSource(path, config=other)

    def test_header_reconstructs_config(self, cfg, tmp_path):
        source = make_dataset(cfg, "medium", seed=1, num_batches=3)
        compiled = CompiledTraceSource(compile_trace(source, tmp_path / "t"))
        assert compiled.config.num_tables == cfg.num_tables
        assert compiled.config.rows_per_table == cfg.rows_per_table
        assert compiled.config.batch_size == cfg.batch_size
        assert compiled.config.lookups_per_table == cfg.lookups_per_table

    def test_compile_rejects_out_of_range_ids(self, cfg, tmp_path):
        source = make_dataset(cfg, "medium", seed=1, num_batches=3)
        corrupt = MaterialisedDataset(source)
        corrupt.batch(1).sparse_ids[0, 0, 0] = cfg.rows_per_table + 7
        with pytest.raises(ValueError, match="outside"):
            compile_trace(corrupt, tmp_path / "t.rtrc")

    def test_partial_write_not_published(self, cfg, tmp_path):
        source = make_dataset(cfg, "medium", seed=1, num_batches=3)
        corrupt = MaterialisedDataset(source)
        corrupt.batch(2).sparse_ids[0, 0, 0] = -5
        out = tmp_path / "t.rtrc"
        with pytest.raises(ValueError):
            compile_trace(corrupt, out)
        assert not out.exists()
        assert not list(tmp_path.glob("*.part"))

    def test_sniff_formats(self, cfg, tmp_path, rng):
        source = make_dataset(cfg, "medium", seed=1, num_batches=3)
        compiled = compile_trace(source, tmp_path / "t.rtrc")
        assert sniff_trace_format(compiled) == "compiled"
        npz = tmp_path / "t.npz"
        save_trace(npz, [source.batch(i) for i in range(3)], cfg)
        assert sniff_trace_format(npz) == "npz"
        tsv = tmp_path / "t.tsv"
        _write_tsv(tsv, 4, 4, rng)
        assert sniff_trace_format(tsv) == "tsv"


class TestTraceFileSpec:
    def test_hashable_picklable_frozen(self, tmp_path):
        spec = TraceFileSpec(path=str(tmp_path / "x.tsv"), format="tsv",
                             batch_size=8, num_tables=2)
        assert hash(spec) == hash(pickle.loads(pickle.dumps(spec)))
        assert pickle.loads(pickle.dumps(spec)) == spec
        with pytest.raises(AttributeError):
            spec.path = "other"

    def test_validation(self):
        with pytest.raises(InvalidTraceFileSpecError, match="format"):
            TraceFileSpec(path="x", format="parquet")
        with pytest.raises(InvalidTraceFileSpecError, match="sha256"):
            TraceFileSpec(path="x", sha256="zz")
        with pytest.raises(InvalidTraceFileSpecError, match="batch_size"):
            TraceFileSpec(path="x", batch_size=0)
        # Uppercase digests normalise to the canonical lowercase form.
        digest = "AB" * 32
        assert TraceFileSpec(path="x", sha256=digest).sha256 == "ab" * 32

    def test_sha256_pin_verifies(self, cfg, tmp_path):
        source = make_dataset(cfg, "medium", seed=1, num_batches=3)
        path = compile_trace(source, tmp_path / "t.rtrc")
        good = TraceFileSpec(path=str(path), sha256=sha256_file(path))
        assert len(good.open(cfg)) == 3
        bad = TraceFileSpec(path=str(path), sha256="0" * 64)
        with pytest.raises(TraceVerificationError, match="mismatch"):
            bad.open(cfg)

    def test_configure_compiled_header_is_authoritative(self, cfg, tmp_path):
        source = make_dataset(cfg, "medium", seed=1, num_batches=3)
        path = compile_trace(source, tmp_path / "t.rtrc")
        spec = TraceFileSpec(path=str(path))
        configured = spec.configure(tiny_config())
        assert configured.batch_size == cfg.batch_size
        assert configured.rows_per_table == cfg.rows_per_table
        conflicting = TraceFileSpec(path=str(path), batch_size=999)
        with pytest.raises(InvalidTraceFileSpecError, match="conflicts"):
            conflicting.configure(tiny_config())

    def test_configure_tsv_applies_overrides(self, tmp_path, rng):
        tsv = tmp_path / "t.tsv"
        _write_tsv(tsv, 8, 4, rng)
        spec = TraceFileSpec(path=str(tsv), format="tsv", batch_size=2,
                             num_tables=2, lookups_per_table=2,
                             rows_per_table=77)
        configured = spec.configure(tiny_config())
        assert configured.batch_size == 2
        assert configured.rows_per_table == 77
        source = spec.open(configured)
        assert len(source) == 4
        assert source.batch(0).sparse_ids.shape == (2, 2, 2)

    def test_configure_reads_npz_geometry(self, cfg, tmp_path):
        source = make_dataset(cfg, "medium", seed=1, num_batches=3)
        npz = tmp_path / "t.npz"
        save_trace(npz, [source.batch(i) for i in range(3)], cfg)
        spec = TraceFileSpec(path=str(npz))
        configured = spec.configure(tiny_config())
        assert configured.batch_size == cfg.batch_size
        assert configured.num_tables == cfg.num_tables
        assert len(spec.open(configured)) == 3
        conflicting = TraceFileSpec(path=str(npz), batch_size=999)
        with pytest.raises(InvalidTraceFileSpecError, match="conflicts"):
            conflicting.configure(tiny_config())

    def test_open_dispatches_npz(self, cfg, tmp_path):
        source = make_dataset(cfg, "medium", seed=1, num_batches=3)
        npz = tmp_path / "t.npz"
        save_trace(npz, [source.batch(i) for i in range(3)], cfg)
        spec = TraceFileSpec(path=str(npz))
        loaded = spec.open(cfg)
        assert len(loaded) == 3
        assert np.array_equal(loaded.batch(1).sparse_ids,
                              source.batch(1).sparse_ids)

    def test_max_batches_caps_every_format(self, cfg, tmp_path, rng):
        source = make_dataset(cfg, "medium", seed=1, num_batches=6)
        compiled = compile_trace(source, tmp_path / "t.rtrc")
        npz = tmp_path / "t.npz"
        save_trace(npz, [source.batch(i) for i in range(6)], cfg)
        tsv = tmp_path / "t.tsv"
        _write_tsv(tsv, 24, 4, rng)
        for path in (compiled, npz, tsv):
            spec = TraceFileSpec(path=str(path), max_batches=2)
            assert len(spec.open(cfg)) == 2, path

    def test_with_dense_rejected_for_id_only_files(self, cfg, tmp_path):
        source = make_dataset(cfg, "medium", seed=1, num_batches=3)
        compiled = compile_trace(source, tmp_path / "t.rtrc")
        npz = tmp_path / "t.npz"
        save_trace(npz, [source.batch(i) for i in range(3)], cfg)
        for path in (compiled, npz):
            spec = TraceFileSpec(path=str(path), with_dense=True)
            with pytest.raises(InvalidTraceFileSpecError, match="dense"):
                spec.open(cfg)

    def test_compiled_magic_stable(self):
        # The on-disk format is a contract: changing the magic (or layout)
        # must bump the version byte consciously.
        assert COMPILED_MAGIC == b"REPRO-CTRACE\x01"

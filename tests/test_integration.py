"""Cross-module integration tests.

These exercise realistic end-to-end compositions that no single module's
unit tests cover: loader-driven pipelines, trace files feeding systems,
public API surface, and multi-epoch training behaviour.
"""

import numpy as np
import pytest

import repro
from repro.core.pipeline import HazardMonitor, ScratchPipePipeline
from repro.core.scratchpad import required_slots
from repro.data.loader import LookaheadLoader
from repro.data.trace import MaterialisedDataset, make_dataset
from repro.model.config import tiny_config
from repro.model.dlrm import DLRMModel
from repro.model.optimizer import SGD
from repro.systems.scratchpipe_system import (
    ScratchPipeTrainingRun,
    make_scratchpads,
)


class TestPublicApi:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__.count(".") == 2

    def test_subpackage_exports_resolve(self):
        import repro.analysis
        import repro.core
        import repro.data
        import repro.hardware
        import repro.model
        import repro.systems

        for module in (repro.analysis, repro.core, repro.data,
                       repro.hardware, repro.model, repro.systems):
            for name in module.__all__:
                assert hasattr(module, name), (module.__name__, name)


class TestLoaderIntegration:
    def test_loader_window_matches_pipeline_future_ids(self):
        """The LookaheadLoader exposes exactly the IDs the Plan stage's
        future window consumes."""
        cfg = tiny_config(rows_per_table=300, batch_size=4,
                          lookups_per_table=2, num_tables=1)
        dataset = make_dataset(cfg, "medium", seed=5, num_batches=8)
        loader = LookaheadLoader(dataset, lookahead=4)
        loader.next_batch()  # cursor at 1
        window = loader.window_ids(0, [1, 2])  # batches 2 and 3
        expected = np.unique(np.concatenate([
            dataset.batch(2).table_ids(0), dataset.batch(3).table_ids(0)
        ]))
        assert np.array_equal(window, expected)


class TestMultiEpochTraining:
    def test_two_epochs_keep_improving(self):
        """Replaying the same trace (a second epoch) keeps training stable
        and the cache warm — hit rates in epoch 2 start high."""
        cfg = tiny_config(rows_per_table=300, batch_size=8,
                          lookups_per_table=2, num_tables=2)
        dataset = make_dataset(cfg, "high", seed=2, num_batches=12,
                               with_dense=True)
        init = DLRMModel.initialise(cfg, seed=1)
        run = ScratchPipeTrainingRun(
            config=cfg,
            cpu_tables=[t.weights.copy() for t in init.tables],
            dense_network=init.dense_network,
            num_slots=required_slots(cfg),
            optimizer=SGD(lr=0.02),
            monitor=HazardMonitor(strict=True),
        )
        first = run.run(dataset)
        # Second epoch: rebuild the pipeline over the same scratchpads.
        pipeline = ScratchPipePipeline(
            config=cfg,
            scratchpads=run.scratchpads,
            dataset_batches=dataset,
            cpu_tables=run.cpu_tables,
            trainer=run.trainer,
            monitor=HazardMonitor(strict=True),
        )
        second = pipeline.run()
        first_epoch_hits = np.mean([s.hit_rate for s in first.cache_stats[:4]])
        second_epoch_hits = np.mean([s.hit_rate for s in second.cache_stats[:4]])
        assert second_epoch_hits > first_epoch_hits
        assert np.isfinite(second.losses).all()

    def test_sequential_reference_matches_two_epochs(self):
        cfg = tiny_config(rows_per_table=200, batch_size=6,
                          lookups_per_table=2, num_tables=2)
        dataset = make_dataset(cfg, "medium", seed=9, num_batches=8,
                               with_dense=True)
        reference = DLRMModel.initialise(cfg, seed=4, optimizer=SGD(lr=0.02))
        for _ in range(2):
            for i in range(8):
                reference.train_step(dataset.batch(i))

        init = DLRMModel.initialise(cfg, seed=4)
        run = ScratchPipeTrainingRun(
            config=cfg,
            cpu_tables=[t.weights.copy() for t in init.tables],
            dense_network=init.dense_network,
            num_slots=required_slots(cfg),
            optimizer=SGD(lr=0.02),
        )
        run.run(dataset)
        pipeline = ScratchPipePipeline(
            config=cfg,
            scratchpads=run.scratchpads,
            dataset_batches=dataset,
            cpu_tables=run.cpu_tables,
            trainer=run.trainer,
        )
        pipeline.run()
        final = run.final_tables()
        for t in range(cfg.num_tables):
            assert np.array_equal(final[t], reference.tables[t].weights)


class TestSystemsShareOneTrace:
    def test_materialised_trace_reused(self):
        """All four timing systems accept the same materialised trace and
        produce internally consistent results."""
        from repro.hardware.spec import DEFAULT_HARDWARE
        from repro.systems import (
            HybridSystem,
            ScratchPipeSystem,
            StaticCacheSystem,
            StrawmanSystem,
        )

        cfg = tiny_config(rows_per_table=2000, batch_size=16,
                          lookups_per_table=4, num_tables=2)
        trace = MaterialisedDataset(
            make_dataset(cfg, "medium", seed=3, num_batches=10)
        )
        results = [
            HybridSystem(cfg, DEFAULT_HARDWARE).run_trace(trace),
            StaticCacheSystem(cfg, DEFAULT_HARDWARE, 0.1).run_trace(trace),
            StrawmanSystem(cfg, DEFAULT_HARDWARE, 0.5).run_trace(trace),
            ScratchPipeSystem(cfg, DEFAULT_HARDWARE, 0.5).run_trace(trace),
        ]
        for result in results:
            assert len(result.iteration_times) == 10
            assert all(t > 0 for t in result.iteration_times)
            assert all(e > 0 for e in result.energies)

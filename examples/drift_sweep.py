#!/usr/bin/env python3
"""Drift sweep: how fast can the hot set move before look-forward loses?

The paper argues embedding accesses are skewed *and temporally stable*
(Section III), and evaluates only stationary traces.  The scenario engine
lets us attack that assumption directly: popularity drift rotates the hot
set through the row space at a configurable rate, and ScratchPipe's
Plan-stage hit rate tells us how much cross-batch reuse survives.

This is the end-to-end recipe for any scenario study:

1. describe the workload as a ``ScenarioSpec`` (a tiny, picklable spec),
2. hand it to ``ExperimentSetup(scenario=...)`` — every figure entry
   point now runs under it, or
3. sweep it directly with ``drift_sensitivity`` / ``scenario_comparison``
   (both parallelise over sweep workers, shipping specs, not traces).

Run:  python examples/drift_sweep.py [--rates 0 1 16 64] [--workers 2]
"""

import argparse

from repro.analysis import format_table
from repro.analysis.experiments import (
    ExperimentSetup,
    drift_sensitivity,
    scenario_comparison,
)
from repro.data.scenarios import SCENARIO_PRESETS
from repro.model.config import tiny_config


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rates", type=float, nargs="+",
                        default=[0.0, 1.0, 16.0, 256.0])
    parser.add_argument("--workers", type=int, default=1)
    args = parser.parse_args()

    config = tiny_config(
        rows_per_table=50_000, batch_size=32, lookups_per_table=4,
        num_tables=2,
    )
    setup = ExperimentSetup(config=config, num_batches=24, seed=0)

    rates = tuple(args.rates)
    sweep = drift_sensitivity(
        setup, drift_rates=rates, cache_fraction=0.02,
        localities=("medium", "high"), workers=args.workers,
    )
    print("\nPlan-stage hit rate vs hot-set drift rate (rows/batch):")
    print(format_table(
        ["locality"] + [f"rate={r:g}" for r in rates],
        [
            [loc] + [f"{per_rate[r]:.1%}" for r in rates]
            for loc, per_rate in sweep.items()
        ],
    ))

    stationary = sweep["high"][rates[0]]
    fastest = sweep["high"][rates[-1]]
    print(f"\nhigh locality: hit rate falls {stationary:.1%} -> {fastest:.1%}"
          f" as drift reaches {rates[-1]:g} rows/batch")

    names = ("stationary", "slow-drift", "fast-drift", "churn", "flash")
    matrix = scenario_comparison(
        {name: SCENARIO_PRESETS[name] for name in names},
        setup, cache_fraction=0.02, locality="high", workers=args.workers,
    )
    print("\nScenario matrix (high base locality, 2% cache):")
    print(format_table(
        ["scenario", "ms/iter", "plan hit rate"],
        [
            [name, f"{row['mean_latency'] * 1e3:.3f}",
             f"{row['hit_rate']:.1%}"]
            for name, row in matrix.items()
        ],
    ))

    print("\nTakeaway: the Train stage still always hits (look-forward")
    print("guarantees it), but drift and churn convert cache hits into")
    print("Collect/Insert traffic — exactly the locality sensitivity the")
    print("paper's stationary benchmarks cannot measure.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart: train a DLRM through ScratchPipe and verify it is exact.

Builds a laptop-scale RecSys model, trains it two ways over the same trace —
(1) the sequential reference with all tables in one memory space, and
(2) the pipelined ScratchPipe runtime with six mini-batches in flight and a
hazard monitor armed — then shows that the always-hit cache reproduces the
reference *bit for bit* while serving every training-time gather from the
scratchpad.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import DLRMModel, make_dataset, required_slots, tiny_config
from repro.core import HazardMonitor
from repro.model import SGD
from repro.systems import ScratchPipeTrainingRun

NUM_BATCHES = 30
SEED = 42


def main() -> None:
    config = tiny_config(
        rows_per_table=2000, batch_size=32, lookups_per_table=4, num_tables=4
    )
    print(f"Model: {config.num_tables} tables x {config.rows_per_table} rows "
          f"x {config.embedding_dim}-d ({config.model_bytes / 1e6:.1f} MB)")
    dataset = make_dataset(
        config, "medium", seed=SEED, num_batches=NUM_BATCHES, with_dense=True
    )

    # --- Sequential reference -----------------------------------------
    reference = DLRMModel.initialise(config, seed=7, optimizer=SGD(lr=0.02))
    ref_losses = [reference.train_step(dataset.batch(i))
                  for i in range(NUM_BATCHES)]

    # --- Pipelined ScratchPipe from the same initialisation ------------
    init = DLRMModel.initialise(config, seed=7)
    run = ScratchPipeTrainingRun(
        config=config,
        cpu_tables=[t.weights.copy() for t in init.tables],
        dense_network=init.dense_network,
        num_slots=required_slots(config),
        optimizer=SGD(lr=0.02),
        monitor=HazardMonitor(strict=True),
    )
    result = run.run(dataset)

    print("\nloss curve (first/last 3):",
          [f"{l:.4f}" for l in result.losses[:3]], "...",
          [f"{l:.4f}" for l in result.losses[-3:]])
    assert np.allclose(result.losses, ref_losses, rtol=0, atol=0), \
        "pipelined losses diverged from the sequential reference"

    final = run.final_tables()
    identical = all(
        np.array_equal(final[t], reference.tables[t].weights)
        for t in range(config.num_tables)
    )
    print(f"bit-identical to sequential SGD:  {identical}")

    steady = result.cache_stats[8:]
    hit_rate = np.mean([s.hit_rate for s in steady])
    print(f"Plan-stage unique-ID hit rate:    {hit_rate:.1%}")
    print(f"Train-stage hit rate (always-hit): {result.train_hit_rate:.0%}")
    print("hazards detected:                 0 (monitor was strict)")


if __name__ == "__main__":
    main()

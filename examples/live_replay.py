"""Live-traffic replay: open-loop arrivals, tail latency, load shedding.

The steady-state figures answer "how fast is one iteration when batches
are always ready?".  This example asks the production question instead:
with batches *arriving* on their own clock, what do the latency tails
look like?  It

1. builds a seeded Poisson arrival process and replays a trace through
   ScratchPipe on a virtual clock (deterministic — run it twice, get the
   same bytes);
2. prints the per-stage and end-to-end p50/p95/p99 report;
3. contrasts an idle rate with an overloaded one, and shows the
   ``reject`` admission policy trading completed batches for a bounded
   tail.

Run:  python examples/live_replay.py [--batches 24] [--rate 16]
"""

import argparse
from dataclasses import replace

from repro.analysis.report import banner, format_table
from repro.api import CacheSpec, SystemSpec, build_system
from repro.data.trace import make_dataset
from repro.hardware.spec import DEFAULT_HARDWARE
from repro.model.config import tiny_config
from repro.serve import ArrivalSpec, ServeSpec, format_serve_report, replay


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--batches", type=int, default=24)
    parser.add_argument("--rate", type=float, default=16.0,
                        help="offered arrivals per virtual second")
    args = parser.parse_args()

    # A laptop-scale ScratchPipe and a medium-locality trace.
    config = tiny_config(rows_per_table=300, batch_size=6,
                         lookups_per_table=2, num_tables=2)
    system = build_system(
        SystemSpec(system="scratchpipe", cache=CacheSpec(fraction=0.2)),
        config,
        DEFAULT_HARDWARE,
    )
    trace = make_dataset(config, "medium", seed=7, num_batches=args.batches)

    # 1. One replay at the requested rate — the full report.
    spec = ServeSpec(arrivals=ArrivalSpec(rate=args.rate), seed=0)
    report = replay(system, trace, spec, warmup=4)
    print(format_serve_report(report))
    again = replay(system, trace, spec, warmup=4)
    print(f"\nreplay deterministic (rerun identical): {report == again}")

    # 2. Idle vs overload vs overload-with-shedding, same trace and seed.
    scale = 1e3  # seconds -> ms
    rows = []
    for label, serve in [
        ("idle", replace(spec, arrivals=ArrivalSpec(rate=0.1))),
        ("overload", replace(spec, arrivals=ArrivalSpec(rate=1e4))),
        ("overload+reject",
         replace(spec, arrivals=ArrivalSpec(rate=1e4),
                 admission="reject", admission_depth=4)),
    ]:
        r = replay(system, trace, serve, warmup=4)
        rows.append([
            label,
            f"{r.end_to_end[0] * scale:.2f}",
            f"{r.end_to_end[2] * scale:.2f}",
            f"{r.sla_violation_rate:.2f}",
            str(r.rejected),
        ])
    print()
    print(banner("Same trace, three traffic regimes"))
    print(format_table(
        ["regime", "p50 ms", "p99 ms", "SLA violations", "rejected"], rows
    ))
    shed_p99 = float(rows[2][2])
    queue_p99 = float(rows[1][2])
    print(f"\nload shedding bounds the tail: reject p99 {shed_p99:.2f} ms "
          f"< queue p99 {queue_p99:.2f} ms: {shed_p99 < queue_p99}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Pipeline timeline: visualise ScratchPipe's schedule and bottleneck.

Prices every stage of a paper-scale ScratchPipe run, renders the Figure 10
staircase schedule, and reports per-stage utilisation — showing how the
pipeline hides the CPU-side Collect/Insert latency behind Train.

Run:  python examples/pipeline_timeline.py [--locality random]
"""

import argparse

from repro import ExperimentSetup
from repro.core.timeline import PipelineTimeline, render_ascii, schedule
from repro.systems import ScratchPipeSystem
from repro.systems.stages import cache_stage_times

CACHE_FRACTION = 0.02


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--locality", default="random",
                        choices=["random", "low", "medium", "high"])
    args = parser.parse_args()

    setup = ExperimentSetup(num_batches=14)
    system = ScratchPipeSystem(setup.config, setup.hardware, CACHE_FRACTION)
    trace = setup.trace(args.locality)
    stats = system.simulate_cache(trace)

    stage_seconds = [
        {k: v.seconds for k, v in
         cache_stage_times(system.cost, s, system.future_window).items()}
        for s in stats
    ]
    timeline = PipelineTimeline(
        stage_seconds=stage_seconds, sync_seconds=setup.hardware.stage_sync_s
    )

    print(f"ScratchPipe schedule — {args.locality} trace, "
          f"{CACHE_FRACTION:.0%} cache\n")
    print(render_ascii(timeline.cycles(), max_cycles=12))

    print(f"\nsteady-state cycle:  "
          f"{timeline.steady_state_cycle_seconds() * 1e3:.2f} ms/iteration")
    print(f"bottleneck stage:    {timeline.bottleneck_stage()}")
    print("stage utilisation:")
    for stage, value in timeline.stage_utilisation().items():
        bar = "#" * int(value * 40)
        print(f"  {stage:9s} {value:5.1%} {bar}")

    sequential = sum(stage_seconds[-1].values())
    pipelined = timeline.steady_state_cycle_seconds()
    print(f"\nunpipelined stage sum: {sequential * 1e3:.2f} ms  ->  "
          f"pipelined cycle: {pipelined * 1e3:.2f} ms "
          f"({sequential / pipelined:.2f}x hidden by overlap)")


if __name__ == "__main__":
    main()

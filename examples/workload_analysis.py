#!/usr/bin/env python3
"""Workload analysis: size a cache for your own trace.

Uses the trace-statistics toolkit (reuse distances, working sets, head
weight) to analyse an embedding trace the way a capacity planner would:
what any LRU cache could possibly hit, how much Storage the ScratchPipe
sliding window needs, and why hit rate alone is the wrong metric to chase.

Run:  python examples/workload_analysis.py [--locality high]
"""

import argparse

import numpy as np

from repro.analysis import format_table
from repro.core import required_slots
from repro.data import make_dataset, trace_stats, lru_hit_rate_curve
from repro.data.stats import working_set_curve
from repro.model import ModelConfig

NUM_BATCHES = 10


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--locality", default="high",
                        choices=["random", "low", "medium", "high"])
    args = parser.parse_args()

    config = ModelConfig(
        num_tables=1,
        rows_per_table=1_000_000,
        lookups_per_table=8,
        batch_size=1024,
        bottom_mlp=(512, 256, 128),
    )
    dataset = make_dataset(config, args.locality, seed=0,
                           num_batches=NUM_BATCHES)
    batches = [dataset.batch(i).table_ids(0) for i in range(NUM_BATCHES)]
    ids = np.concatenate(batches)

    stats = trace_stats(ids)
    print(f"trace: {args.locality} locality, {stats.total_lookups} lookups, "
          f"{stats.unique_rows} distinct rows")
    print(format_table(
        ["metric", "value"],
        [
            ["single-use rows (uncacheable tail)",
             f"{stats.single_use_fraction:.1%}"],
            ["mean gathers per touched row", f"{stats.mean_duplication:.2f}"],
            ["lookups on hottest 1% of rows", f"{stats.top_1pct_share:.1%}"],
        ],
    ))

    capacities = [1_000, 10_000, 100_000, 1_000_000]
    curve = lru_hit_rate_curve(ids, capacities)
    print("\nexact LRU hit rate by capacity (reuse-distance method):")
    print(format_table(
        ["capacity (rows)", "hit rate"],
        [[f"{c:,}", f"{h:.1%}"] for c, h in zip(capacities, curve)],
    ))

    window = working_set_curve(batches, window_batches=6)
    bound = required_slots(config, window_batches=6)
    print(f"\nScratchPipe sliding-window working set: "
          f"max {window.max():,} rows (live)")
    print(f"Section VI-D provisioning bound:        {bound:,} rows")
    print(f"headroom: {bound / window.max():.2f}x — the paper's worst-case "
          "bound comfortably covers the live set")
    print("\nNote the ceiling: even an infinite LRU cache cannot hit the "
          f"{stats.single_use_fraction:.0%} single-use tail.  ScratchPipe "
          "sidesteps the ceiling entirely — misses are prefetched ahead of "
          "use, so they cost bandwidth, not stalls.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Trace replay: persist a training trace and train from the file.

Demonstrates the property ScratchPipe is built on — the training dataset is
a file that records the sparse IDs of *all* upcoming iterations — by
generating a trace, saving it to disk, and then driving the full pipelined
runtime (with its look-forward Plan stage) straight off the file.

Run:  python examples/trace_replay.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import DLRMModel, make_dataset, required_slots, tiny_config
from repro.core import HazardMonitor
from repro.data import TraceFile, save_trace
from repro.model import SGD
from repro.systems import ScratchPipeTrainingRun

NUM_BATCHES = 20


def main() -> None:
    config = tiny_config(
        rows_per_table=1500, batch_size=16, lookups_per_table=3, num_tables=2
    )
    dataset = make_dataset(config, "high", seed=11, num_batches=NUM_BATCHES,
                           with_dense=True)

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "criteo_like_trace.npz"
        save_trace(path, [dataset.batch(i) for i in range(NUM_BATCHES)], config)
        print(f"saved trace: {path.name} "
              f"({path.stat().st_size / 1e3:.0f} kB, {NUM_BATCHES} batches)")

        trace = TraceFile(path)
        trace.validate_against(config)

        init = DLRMModel.initialise(config, seed=3)
        run = ScratchPipeTrainingRun(
            config=config,
            cpu_tables=[t.weights.copy() for t in init.tables],
            dense_network=init.dense_network,
            num_slots=required_slots(config),
            optimizer=SGD(lr=0.02),
            monitor=HazardMonitor(strict=True),
        )
        result = run.run(trace)

        hit_rates = [s.hit_rate for s in result.cache_stats]
        print(f"trained {len(result.losses)} batches from the file")
        print(f"loss: {result.losses[0]:.4f} -> {result.losses[-1]:.4f}")
        print("Plan-stage hit rate as the cache warms: "
              + " ".join(f"{h:.0%}" for h in hit_rates[::4]))
        print("hazards: none (strict monitor); every Train gather was a hit")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Compare the four training-system designs on the paper's workload.

Runs the hybrid CPU-GPU baseline, the static top-N cache, the unpipelined
straw-man and the pipelined ScratchPipe over the paper's default model
(8 tables x 10M rows x 128-d, 20 lookups, batch 2048) for each locality
class, and prints per-iteration latency, the speedup over the static cache
(Figure 13's metric) and energy per iteration (Figure 14).

Run:  python examples/system_comparison.py          (takes ~1 minute)
"""

from repro import ExperimentSetup
from repro.analysis import format_table
from repro.data import LOCALITY_CLASSES
from repro.systems import (
    HybridSystem,
    ScratchPipeSystem,
    StaticCacheSystem,
    StrawmanSystem,
)

CACHE_FRACTION = 0.02
WARMUP = 8


def main() -> None:
    setup = ExperimentSetup(num_batches=14)
    config, hardware = setup.config, setup.hardware
    print(f"Workload: {config.num_tables} tables x "
          f"{config.rows_per_table / 1e6:.0f}M rows x {config.embedding_dim}-d"
          f" = {config.model_bytes / 1e9:.0f} GB model, "
          f"{CACHE_FRACTION:.0%} GPU cache")

    rows = []
    for locality in LOCALITY_CLASSES:
        trace = setup.trace(locality)
        hybrid = HybridSystem(config, hardware).run_trace(trace)
        static = StaticCacheSystem(config, hardware, CACHE_FRACTION).run_trace(trace)
        strawman = StrawmanSystem(config, hardware, CACHE_FRACTION).run_trace(trace)
        scratchpipe = ScratchPipeSystem(config, hardware, CACHE_FRACTION).run_trace(trace)

        static_ms = static.mean_latency(0) * 1e3
        sp_ms = scratchpipe.mean_latency(WARMUP) * 1e3
        rows.append([
            locality,
            f"{hybrid.mean_latency(0) * 1e3:7.1f}",
            f"{static_ms:7.1f}",
            f"{strawman.mean_latency(WARMUP) * 1e3:7.1f}",
            f"{sp_ms:7.1f}",
            f"{static_ms / sp_ms:4.2f}x",
            f"{static.mean_energy(0):5.1f}",
            f"{scratchpipe.mean_energy(WARMUP):5.1f}",
        ])

    print()
    print(format_table(
        ["locality", "hybrid ms", "static ms", "strawman ms",
         "scratchpipe ms", "SP speedup", "static J", "SP J"],
        rows,
    ))
    print("\nPaper reference: ScratchPipe achieves 2.8x average (4.2x max)")
    print("over the static cache, shrinking as dataset locality grows.")


if __name__ == "__main__":
    main()

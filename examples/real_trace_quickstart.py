"""Real-trace quickstart: fetch -> ingest -> replay through ScratchPipe.

The paper's evaluation runs on real recommendation traces; this example
walks the whole first-class path on the bundled Criteo-style sample:

1. resolve + verify the named trace (``criteo-sample``: a deterministic
   2k-line Criteo-layout TSV pinned by sha256);
2. compile it to the binary memmap format (parse once, replay forever);
3. check the compiled replay is bit-identical to parsing the TSV;
4. run the ScratchPipe metadata pipeline over it and compare designs.

Run:  python examples/real_trace_quickstart.py [--batches 12]
"""

import argparse
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.api import CacheSpec, SystemSpec
from repro.analysis.experiments import ExperimentSetup
from repro.data.fetch import resolve_trace
from repro.data.io import CompiledTraceSource, compile_trace, sha256_file
from repro.data.trace import MaterialisedDataset
from repro.model.config import ModelConfig


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--batches", type=int, default=12)
    args = parser.parse_args()

    # 1. Resolve the named trace: the spec carries path, sha256 pin and
    #    the geometry mapping (8 tables x 3 lookups over 26 Criteo
    #    categorical columns, hashed into 50k rows/table).
    spec = resolve_trace("criteo-sample")
    spec.verify()
    config = spec.configure(ModelConfig())
    print(f"trace   : {Path(spec.path).name} (sha256 {spec.sha256[:12]}..., "
          "verified)")
    print(f"geometry: {config.num_tables} tables x {config.batch_size} "
          f"batch x {config.lookups_per_table} lookups, "
          f"{config.rows_per_table} rows/table")

    # 2. Parse the TSV once and compile it.
    with tempfile.TemporaryDirectory() as tmp:
        source = spec.open(config)
        start = time.perf_counter()
        compiled_path = compile_trace(source, Path(tmp) / "sample.rtrc")
        compile_seconds = time.perf_counter() - start
        print(f"compiled: {compiled_path.stat().st_size} bytes in "
              f"{compile_seconds * 1e3:.0f} ms "
              f"(sha256 {sha256_file(compiled_path)[:12]}...)")

        # 3. Round-trip property: compiled replay == TSV parse, batch for
        #    batch, in any access order.
        compiled = CompiledTraceSource(compiled_path, config=config)
        source.reset()
        reference = MaterialisedDataset(source)
        for index in (0, len(compiled) - 1, 3, 0):
            assert np.array_equal(
                compiled.batch(index).sparse_ids,
                reference.batch(index).sparse_ids,
            )
        print(f"replay  : bit-identical to the TSV parse "
              f"({len(compiled)} batches, O(1) random access)")

        # 4. Replay the real trace through the designs.  The 10% cache
        #    clears the hazard-window floor at this geometry (~3.1%).
        setup = ExperimentSetup(
            config=config, num_batches=args.batches, trace_file=spec
        )
        trace = setup.trace("criteo-sample")
        cache = CacheSpec(fraction=0.10)
        print(f"\nreplaying {len(trace)} batches through the designs:")
        for name in ("static_cache", "strawman", "scratchpipe"):
            system = setup.build(SystemSpec(system=name, cache=cache))
            latency = system.run_trace(trace).mean_latency(warmup=4)
            print(f"  {name:13s} {latency * 1e3:8.2f} ms/iter")
        aggregate = setup.build(
            SystemSpec(system="scratchpipe", cache=cache)
        ).aggregate_cache_stats(trace, warmup=4)
        print(f"\nscratchpipe Plan-stage hit rate on the real trace: "
              f"{aggregate.hit_rate:.1%}")
        print("per-table hit rates:",
              " ".join(f"{r:.1%}" for r in aggregate.per_table_hit_rates()))


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Training-cost planner: single-GPU ScratchPipe vs an 8-GPU cluster.

Reproduces Table I's comparison for a configurable model: estimates the
per-iteration latency of single-GPU ScratchPipe (p3.2xlarge) and of a
model-parallel GPU-only system (p3.16xlarge), then prices one million
training iterations on AWS.  Because ScratchPipe leaves SGD untouched,
equal iteration counts reach equal accuracy, making dollars-per-run the
honest comparison.

Run:  python examples/cost_planner.py [--tables 8] [--lookups 20]
"""

import argparse

from repro import ExperimentSetup, ModelConfig
from repro.analysis import format_table
from repro.analysis.cost import cost_saving, multi_gpu_row, scratchpipe_row
from repro.data import LOCALITY_CLASSES
from repro.systems import MultiGpuSystem, ScratchPipeSystem

WARMUP = 8


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tables", type=int, default=8,
                        help="number of embedding tables")
    parser.add_argument("--lookups", type=int, default=20,
                        help="gathers per table per sample")
    parser.add_argument("--cache", type=float, default=0.02,
                        help="GPU cache fraction of each table")
    parser.add_argument("--gpus", type=int, default=8,
                        help="GPU count of the cluster baseline")
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    config = ModelConfig(num_tables=args.tables,
                         lookups_per_table=args.lookups)
    setup = ExperimentSetup(config=config, num_batches=14)
    print(f"Model: {config.model_bytes / 1e9:.0f} GB embeddings, "
          f"{args.lookups} lookups/table, batch {config.batch_size}")

    rows = []
    savings = []
    for locality in LOCALITY_CLASSES:
        trace = setup.trace(locality)
        sp_latency = ScratchPipeSystem(
            config, setup.hardware, args.cache
        ).run_trace(trace).mean_latency(WARMUP)
        mg_latency = MultiGpuSystem(
            config, setup.hardware, num_gpus=args.gpus
        ).run_trace(trace).mean_latency(0)
        sp = scratchpipe_row(locality.capitalize(), sp_latency)
        mg = multi_gpu_row(locality.capitalize(), mg_latency)
        rows.extend([sp.formatted(), mg.formatted()])
        savings.append(cost_saving(sp, mg))

    print()
    print(format_table(
        ["Dataset", "System", "AWS Instance", "Price/hr", "Iter. Time",
         "1M Iter. Cost"],
        rows,
    ))
    print(f"\nScratchPipe cost saving: "
          f"avg {sum(savings) / len(savings):.1f}x, max {max(savings):.1f}x "
          "(paper: avg 4.0x, max 5.7x)")


if __name__ == "__main__":
    main()

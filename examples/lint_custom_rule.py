#!/usr/bin/env python3
"""Extend repro.lint with a project-specific rule.

The linter's registry is the same plugin pattern as ``repro.api``'s
``@register_system``: subclass :class:`~repro.lint.LintRule`, decorate it
with :func:`~repro.lint.register_rule` (or ship it as a
``"repro.lint_rules"`` entry point), and every engine entry — the
:func:`~repro.lint.lint_paths` API, ``python -m repro.lint`` and
``repro.cli lint`` — enforces it alongside the builtins.

The demo rule bans ``print()`` in library code (reports belong in the
reporting layer, not buried in simulators), lints an offending snippet,
and shows the same inline-suppression workflow the builtin rules use:
silencing the rule requires a ``-- <why>`` justification.

Run:  python examples/lint_custom_rule.py
"""

import ast
import tempfile
import textwrap
from pathlib import Path

from repro.lint import LintRule, lint_paths, register_rule


@register_rule
class NoPrintRule(LintRule):
    """Library modules must not print; return data, let reporters render."""

    name = "example-no-print"
    description = "print() in library code bypasses the reporting layer"

    def check(self, module):
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"
            ):
                yield module.finding(
                    node, self.name,
                    "print() in library code; return the value and let "
                    "the reporting layer render it",
                )


SNIPPET = """\
def simulate(steps):
    total = 0.0
    for step in range(steps):
        total += step * 0.5
        print("step", step, total)
    # repro-lint: disable=example-no-print -- final summary is this
    # demo module's only user-facing output.
    print("done:", total)
    return total
"""


def main() -> None:
    with tempfile.TemporaryDirectory() as scratch:
        root = Path(scratch)
        target = root / "sim.py"
        target.write_text(textwrap.dedent(SNIPPET))

        run = lint_paths([target], select=["example-no-print"], root=root)

        print(f"linted {run.files} file with rule "
              f"{NoPrintRule.name!r}: {len(run.findings)} finding, "
              f"{len(run.suppressed)} suppressed")
        for found in run.findings:
            print(f"  {found.location()}: [{found.rule}] {found.message}")
        for found in run.suppressed:
            print(f"  {found.location()}: suppressed with justification")

        assert len(run.findings) == 1, "the loop print must be flagged"
        assert len(run.suppressed) == 1, "the justified print is silenced"
        assert run.findings[0].line == 5
    print("custom rule enforced:  True")


if __name__ == "__main__":
    main()

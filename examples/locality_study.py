#!/usr/bin/env python3
"""Locality study: reproduce the analysis behind Figures 3 and 6.

Characterises the four dataset profiles (Alibaba, Kaggle Anime, MovieLens,
Criteo) the paper uses to motivate — and then stress — embedding caches:
sorted access-count curves, static-cache hit-rate curves, and a check of the
two anchor points Section III-A quotes.

Run:  python examples/locality_study.py
"""

import numpy as np

from repro.analysis import format_series, format_table
from repro.analysis.locality import (
    dataset_hit_rate_curves,
    empirical_hit_rate,
)
from repro.data import DATASET_PROFILES, make_dataset
from repro.model import ModelConfig

NUM_ROWS = 10_000_000


def access_share_table() -> None:
    """What share of traffic do the hottest rows capture?"""
    fractions = [0.001, 0.01, 0.02, 0.10, 0.50]
    rows = []
    for profile in DATASET_PROFILES:
        dist = profile.distribution(NUM_ROWS)
        rows.append(
            [profile.name]
            + [f"{dist.hit_rate(f):.1%}" for f in fractions]
        )
    headers = ["dataset"] + [f"top {f:.1%}" for f in fractions]
    print("\nTraffic captured by hottest rows (Figure 3's long tail):")
    print(format_table(headers, rows))


def hit_rate_curves() -> None:
    """Figure 6: static-cache hit rate vs cache size."""
    fractions = np.array([0.02, 0.05, 0.10, 0.25, 0.50, 0.75, 1.00])
    curves = dataset_hit_rate_curves(fractions, NUM_ROWS)
    print("\nStatic-cache hit rate vs cache size (Figure 6):")
    for name, curve in curves.items():
        xs = [f"{f:.0%}" for f in fractions]
        print("  " + format_series(name, xs, curve, y_format="{:.2f}"))


def anchor_points() -> None:
    """Verify the Section III-A quotes and compare with a sampled trace."""
    config = ModelConfig(num_tables=1, rows_per_table=NUM_ROWS,
                         bottom_mlp=(512, 256, 128))
    print("\nSection III-A anchor points (analytic vs sampled trace):")
    for locality, quote in (("high", "Criteo: 2% of rows -> >80% of traffic"),
                            ("low", "Alibaba: 2% of rows -> 8.5%")):
        dataset = make_dataset(config, locality, seed=0, num_batches=2)
        measured = empirical_hit_rate(dataset, 0.02, num_batches=2)
        print(f"  {quote:45s} measured {measured:.1%}")


def main() -> None:
    access_share_table()
    hit_rate_curves()
    anchor_points()
    print("\nTakeaway: for low-locality datasets, >90% hit rates need the")
    print("majority of the table cached — impossible in tens-of-GB HBM,")
    print("which is why the paper replaces popularity caching with")
    print("look-ahead prefetching.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Heterogeneous per-table caches under cross-table correlation.

ScratchPipe instantiates one cache manager per embedding table
(Section VI-G) — but the paper sizes them all identically.  The
``repro.api`` spec layer makes the allocation a first-class knob: a
``CacheSpec`` can give table 0 a big LRU cache and every other table a
small one, and ``build_system`` assembles per-table Hit-Map/Hold-mask/
policy triples sized independently.

This study crosses that knob with the PR 3 *cross-table correlation*
scenario (tables share a fraction ``rho`` of their underlying draws —
the same "user intent" touching hot rows in several tables at once) and
reads the per-table Plan hit rates the aggregate rollup now exposes:

1. describe each allocation as a ``CacheSpec`` (the CLI shorthand
   ``table0=0.1,rest=0.03`` parses to one),
2. wrap it in a ``SystemSpec`` — every sweep point ships the
   ``(SystemSpec, ScenarioSpec)`` pair to workers, never arrays,
3. sweep with ``heterogeneous_cache`` (or ``repro.cli hetero``).

Run:  python examples/heterogeneous_caches.py [--rhos 0 0.5] [--workers 2]
"""

import argparse

from repro.analysis import format_table
from repro.analysis.experiments import ExperimentSetup, heterogeneous_cache
from repro.api import CacheSpec, parse_cache_spec
from repro.model.config import tiny_config


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rhos", type=float, nargs="+",
                        default=[0.0, 0.5, 0.9])
    parser.add_argument("--workers", type=int, default=1)
    args = parser.parse_args()

    config = tiny_config(
        rows_per_table=20_000, batch_size=16, lookups_per_table=4,
        num_tables=2,
    )
    setup = ExperimentSetup(config=config, num_batches=150, seed=1)

    # Budget-matched: 0.065 * 2 tables == 0.1 + 0.03.  Sized so the
    # 150-batch high-locality trace actually evicts (an oversized cache
    # never differentiates allocations).
    splits = {
        "uniform=0.065": CacheSpec(fraction=0.065),
        "table0=0.1,rest=0.03": parse_cache_spec("table0=0.1,rest=0.03"),
    }

    rhos = tuple(args.rhos)
    out = heterogeneous_cache(
        setup, rhos=rhos, cache_specs=splits, locality="high",
        workers=args.workers,
    )

    print("\nPlan hit rate vs correlation rho x per-table cache split:")
    print(format_table(
        ["cache split"] + [f"rho={rho:g}" for rho in rhos],
        [
            [name] + [f"{cells[rho]['hit_rate']:.1%}" for rho in rhos]
            for name, cells in out.items()
        ],
    ))

    print("\nper-table hit rates (table0 | table1):")
    print(format_table(
        ["cache split"] + [f"rho={rho:g}" for rho in rhos],
        [
            [name] + [
                " | ".join(f"{rate:.1%}"
                           for rate in cells[rho]["per_table"])
                for rho in rhos
            ]
            for name, cells in out.items()
        ],
    ))

    hetero = out["table0=0.1,rest=0.03"]
    boosted, starved = hetero[rhos[0]]["per_table"]
    print(f"\nat rho={rhos[0]:g}: the boosted table hits {boosted:.1%} vs "
          f"{starved:.1%} for the starved one — the allocation knob works")
    print("per-table caches are now a spec field: sweep any split with")
    print("  python -m repro.cli hetero --splits table0=0.1,rest=0.03 0.065")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Optimiser-state co-location: row-wise Adagrad inside the scratchpad.

Production DLRM training pairs the embeddings with row-wise Adagrad, whose
per-row accumulator must migrate with the row between CPU memory and the
GPU scratchpad.  This example trains the same trace two ways — sequential
reference Adagrad vs the pipelined scratchpad with an accumulator column
riding along every row — and verifies weights AND optimiser state match
bit-for-bit, even under constant evictions.

Run:  python examples/adagrad_training.py
"""

import numpy as np

from repro import DLRMModel, make_dataset, required_slots, tiny_config
from repro.core import HazardMonitor
from repro.model import AdagradOptimizer
from repro.systems import AdagradScratchPipeRun

NUM_BATCHES = 24
LR = 0.05


def main() -> None:
    config = tiny_config(
        rows_per_table=1200, batch_size=16, lookups_per_table=4, num_tables=2
    )
    dataset = make_dataset(config, "medium", seed=5, num_batches=NUM_BATCHES,
                           with_dense=True)

    # Sequential reference with row-wise Adagrad (float32 state, matching
    # the scratchpad's accumulator column).
    reference = DLRMModel.initialise(
        config, seed=11,
        optimizer=AdagradOptimizer(lr=LR, state_dtype=np.float32),
    )
    ref_losses = [reference.train_step(dataset.batch(i))
                  for i in range(NUM_BATCHES)]

    # Pipelined run with a deliberately tight cache: rows (and their
    # accumulators) constantly evict to CPU and return.
    init = DLRMModel.initialise(config, seed=11)
    run = AdagradScratchPipeRun(
        config=config,
        weight_tables=[t.weights.copy() for t in init.tables],
        dense_network=init.dense_network,
        num_slots=required_slots(config, window_batches=6),
        lr=LR,
        monitor=HazardMonitor(strict=True),
    )
    result = run.run(dataset)
    weights, accumulators = run.final_state()

    weights_match = all(
        np.array_equal(weights[t], reference.tables[t].weights)
        for t in range(config.num_tables)
    )
    state_match = all(
        np.array_equal(
            accumulators[t],
            reference.optimizer._sparse[id(reference.tables[t])].accumulator(
                np.arange(config.rows_per_table)
            ),
        )
        for t in range(config.num_tables)
    )
    losses_match = np.allclose(result.losses, ref_losses, rtol=0, atol=0)

    print(f"trained {NUM_BATCHES} batches with row-wise Adagrad")
    print(f"loss: {result.losses[0]:.4f} -> {result.losses[-1]:.4f}")
    print(f"weights bit-identical to reference:      {weights_match}")
    print(f"accumulators bit-identical to reference: {state_match}")
    print(f"losses bit-identical to reference:       {losses_match}")
    nonzero = int((accumulators[0] > 0).sum())
    print(f"rows with live optimiser state (table 0): {nonzero} "
          f"of {config.rows_per_table}")


if __name__ == "__main__":
    main()

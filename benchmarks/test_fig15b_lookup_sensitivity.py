"""Figure 15(b) — sensitivity to the number of embedding lookups (1-50).

The paper: at 50 lookups the embedding layer bottleneck intensifies and
ScratchPipe's average speedup grows to 3.7x (max 5.6x); at a single lookup
per table the model barely stresses the embedding path, yet ScratchPipe
still wins, just by less.

Note: 50 lookups per table inflate the sliding window's working set; the
scratchpad is sized at 10% (within the paper's 2-10% study range) so the
Section VI-D capacity bound holds for every lookup count.
"""

from conftest import run_once
from repro.analysis.experiments import fig15b_lookup_sensitivity
from repro.analysis.report import banner, format_table

LOOKUPS = (1, 20, 50)


def test_fig15b_lookup_sensitivity(benchmark, setup):
    points = run_once(
        benchmark,
        lambda: fig15b_lookup_sensitivity(
            lookups=LOOKUPS, cache_fraction=0.10, base=setup
        ),
    )

    print(banner("Figure 15(b): speedup vs lookups per table"))
    rows = [
        [p.locality, f"{p.speedups()['hybrid']:.2f}", "1.00",
         f"{p.speedups()['strawman']:.2f}",
         f"{p.speedups()['scratchpipe']:.2f}"]
        for p in points
    ]
    print(format_table(
        ["locality/lookups", "hybrid", "static", "strawman", "scratchpipe"],
        rows,
    ))

    by_key = {p.locality: p.speedups()["scratchpipe"] for p in points}
    # ScratchPipe wins at every lookup count.
    assert all(v > 1.0 for v in by_key.values())
    # Heavier embedding traffic -> bigger advantage.
    for locality in ("random", "low", "medium", "high"):
        assert (
            by_key[f"{locality}/lookups=50"] > by_key[f"{locality}/lookups=1"]
        ), locality

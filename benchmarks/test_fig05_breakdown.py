"""Figure 5 — training-time breakdown of hybrid vs static caches.

Regenerates the stacked-bar data: per-iteration time split into CPU
embedding forward, CPU embedding backward and GPU stages, for the no-cache
hybrid and for static caches holding the top 2% / 10% of each table, across
the four locality classes.
"""

from conftest import run_once
from repro.analysis.experiments import fig5_breakdown
from repro.analysis.report import banner, format_breakdown
from repro.systems.base import CPU_EMB_BACKWARD, CPU_EMB_FORWARD


def test_fig5_breakdown(benchmark, setup):
    out = run_once(benchmark, lambda: fig5_breakdown(setup))

    print(banner("Figure 5: training-time breakdown (ms)"))
    for locality, designs in out.items():
        for design, groups in designs.items():
            print(format_breakdown(f"{locality:7s} {design:10s}", groups))

    for locality, designs in out.items():
        hybrid_total = sum(designs["hybrid"].values())
        static2_total = sum(designs["static_2%"].values())
        static10_total = sum(designs["static_10%"].values())
        # The paper: hybrid sits around 150-200 ms; caching helps, larger
        # caches help more (weakly for random).
        assert 0.120 < hybrid_total < 0.260, (locality, hybrid_total)
        assert static10_total <= static2_total * 1.02, locality
        # CPU-side embedding work dominates the hybrid baseline.
        cpu = (designs["hybrid"][CPU_EMB_FORWARD]
               + designs["hybrid"][CPU_EMB_BACKWARD])
        assert cpu > 0.6 * hybrid_total, locality

    # For the high-locality trace a 2% static cache slashes CPU time; for
    # the random trace it barely moves (the paper's central observation).
    def cpu_share(designs, key):
        groups = designs[key]
        return groups[CPU_EMB_FORWARD] + groups[CPU_EMB_BACKWARD]

    high_gain = cpu_share(out["high"], "hybrid") / cpu_share(out["high"], "static_2%")
    random_gain = (cpu_share(out["random"], "hybrid")
                   / cpu_share(out["random"], "static_2%"))
    assert high_gain > 2.0
    assert random_gain < 1.3

"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one of the paper's tables or figures, printing
the same rows/series the paper reports and asserting its *shape* properties
(orderings, ratios, crossovers).  Heavy experiments run exactly once via
``benchmark.pedantic(..., rounds=1)`` so the suite stays tractable.
"""

import pytest

from repro.analysis.experiments import ExperimentSetup

#: Trace length per (locality, system) point; 8 warm-up + 6 steady samples.
BENCH_BATCHES = 14


@pytest.fixture(scope="session")
def setup() -> ExperimentSetup:
    """Full paper-scale experiment setup, shared across benchmarks."""
    return ExperimentSetup(num_batches=BENCH_BATCHES)


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, iterations=1, rounds=1)

"""Ablation — dynamic (ScratchPipe) vs static cache hit rates.

Figure 6 plots the *static* cache's lookup-level hit rate.  A design
question DESIGN.md calls out is how the dynamic LRU cache's working-set
tracking compares against popularity pinning at equal capacity.  The honest
comparison is on the same denominator, so both rates here are **unique-ID**
rates per batch (each distinct row counted once): that is what determines
the Collect-stage traffic in ScratchPipe.  Lookup-level rates are far
higher on skewed traces (hot rows repeat within a batch) and are reported
alongside for reference.
"""

import numpy as np

from conftest import run_once
from repro.analysis.report import banner, format_table
from repro.data.datasets import LOCALITY_CLASSES, locality_distribution
from repro.systems.scratchpipe_system import ScratchPipeSystem

CACHE_FRACTION = 0.02
WARMUP = 8


def test_dynamic_vs_static_hit_rate(benchmark, setup):
    def experiment():
        out = {}
        hot_rows = int(CACHE_FRACTION * setup.config.rows_per_table)
        for locality in LOCALITY_CLASSES:
            trace = setup.trace(locality)
            # Static top-N, measured on the *unique IDs* of each batch.
            static_unique = []
            for i in range(WARMUP, len(trace)):
                batch = trace.batch(i)
                unique = np.unique(batch.sparse_ids.reshape(-1))
                static_unique.append(float((unique < hot_rows).mean()))
            # Dynamic LRU (ScratchPipe Plan stage), also unique-ID based.
            system = ScratchPipeSystem(
                setup.config, setup.hardware, CACHE_FRACTION
            )
            stats = system.simulate_cache(trace)
            dynamic = float(np.mean([s.hit_rate for s in stats[WARMUP:]]))
            lookup_level = locality_distribution(
                locality, setup.config.rows_per_table
            ).hit_rate(CACHE_FRACTION)
            out[locality] = (float(np.mean(static_unique)), dynamic,
                             lookup_level)
        return out

    out = run_once(benchmark, experiment)

    print(banner("Ablation: static vs dynamic unique-ID hit rate at 2%"))
    rows = [
        [locality, f"{static:.1%}", f"{dynamic:.1%}", f"{lookup:.1%}"]
        for locality, (static, dynamic, lookup) in out.items()
    ]
    print(format_table(
        ["locality", "static (unique)", "dynamic LRU (unique)",
         "static (lookup-level)"],
        rows,
    ))

    # The measured result — and the ablation's point: popularity pinning
    # achieves the *higher* unique-ID hit rate on skewed traces (LRU spends
    # slots on recent one-off tail rows), yet ScratchPipe still beats the
    # static system end-to-end (Figure 13) because its misses are
    # prefetched off the critical path instead of stalling training.  The
    # win comes from the always-hit pipelining, not from a better hit rate.
    uniques = {loc: v[1] for loc, v in out.items()}
    statics = {loc: v[0] for loc, v in out.items()}
    for locality in ("medium", "high"):
        assert statics[locality] > uniques[locality], locality
    # Skew helps both policies (ordering preserved).
    assert uniques["high"] > uniques["medium"] > uniques["random"]
    assert statics["high"] > statics["medium"] > statics["random"]
    # On uniform traffic no policy beats capacity, and recency == popularity.
    assert uniques["random"] < CACHE_FRACTION + 0.05
    assert abs(uniques["random"] - statics["random"]) < 0.05

"""Memory-cap smoke test: constant-memory scenario streaming.

Guards the TraceSource streaming claim end-to-end: a drift scenario two
orders of magnitude longer than the baseline streams through
``ScratchPipeSystem`` with peak RSS below 2x the baseline run.  Any
accidental O(num_batches) retention — materialising the trace, collecting
per-batch stats, an unbounded pipeline batch cache — blows the bound by a
wide margin (per-batch stats alone would add ~50 B/batch; a materialised
1M-batch trace ~16 MB even at this toy geometry, against a ~40 MB
interpreter baseline).

Each run executes in a fresh subprocess so ``ru_maxrss`` (a high-water
mark) measures that run alone.  The default large scale is 100k batches to
keep the tier-1 wall-clock sane; the CI memory-smoke job sets
``REPRO_STREAM_FULL=1`` to run the full 1M-batch scale from the acceptance
criterion (~2 minutes).
"""

import os
import subprocess
import sys
from pathlib import Path

SMALL_BATCHES = 10_000
LARGE_BATCHES = (
    1_000_000 if os.environ.get("REPRO_STREAM_FULL") else 100_000
)

_CHILD = """
import resource, sys
from repro.data.scenarios import DriftSpec, ScenarioSpec, build_scenario
from repro.hardware.spec import DEFAULT_HARDWARE
from repro.model.config import tiny_config
from repro.systems.scratchpipe_system import ScratchPipeSystem

num_batches = int(sys.argv[1])
cfg = tiny_config(
    rows_per_table=4000, batch_size=2, lookups_per_table=1, num_tables=1
)
spec = ScenarioSpec(locality="high", drift=DriftSpec(rate=2.0))
source = build_scenario(cfg, spec, seed=0, num_batches=num_batches)
system = ScratchPipeSystem(cfg, DEFAULT_HARDWARE, 0.05)
totals = system.aggregate_cache_stats(source)
assert totals.batches == num_batches, totals.batches
assert totals.unique_ids > 0
peak_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
print(f"RESULT {peak_kb} {totals.hit_rate:.6f}")
"""


def _streamed_peak_rss_kb(num_batches: int) -> int:
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    out = subprocess.run(
        [sys.executable, "-c", _CHILD, str(num_batches)],
        env=env,
        capture_output=True,
        text=True,
        check=True,
    )
    for line in out.stdout.splitlines():
        if line.startswith("RESULT "):
            return int(line.split()[1])
    raise AssertionError(f"no RESULT line in child output: {out.stdout!r}")


def test_streaming_rss_is_flat_in_trace_length():
    small_kb = _streamed_peak_rss_kb(SMALL_BATCHES)
    large_kb = _streamed_peak_rss_kb(LARGE_BATCHES)
    ratio = large_kb / small_kb
    print(
        f"\npeak RSS: {SMALL_BATCHES} batches -> {small_kb // 1024} MB, "
        f"{LARGE_BATCHES} batches -> {large_kb // 1024} MB "
        f"(ratio {ratio:.2f}x)"
    )
    assert ratio < 2.0, (
        f"streaming a {LARGE_BATCHES}-batch scenario used {ratio:.2f}x the "
        f"peak RSS of the {SMALL_BATCHES}-batch run; the constant-memory "
        "claim is broken"
    )

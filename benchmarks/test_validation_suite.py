"""Model-vs-simulation cross-validation (reproduction hygiene).

Not a paper figure: verifies that the analytic layer (closed-form hit
rates, capacity bounds) and the functional simulator (actual Hit-Map /
Hold-mask machinery over sampled traces) agree — the precondition for
trusting every reproduced figure above.
"""

from conftest import run_once
from repro.analysis.report import banner, format_table
from repro.analysis.validation import run_validation_suite
from repro.model.config import ModelConfig


def test_validation_suite(benchmark, setup):
    # A reduced model keeps the dynamic-cache fill time tractable while
    # using the same machinery as the full-scale benches.
    config = ModelConfig(
        num_tables=2,
        rows_per_table=400_000,
        embedding_dim=32,
        lookups_per_table=4,
        batch_size=256,
        bottom_mlp=(64, 32),
        top_mlp=(64, 1),
    )
    reports = run_once(
        benchmark, lambda: run_validation_suite(config, setup.hardware)
    )

    print(banner("Cross-validation: analytic model vs functional simulator"))
    rows = [
        [name, f"{r.predicted:.4g}", f"{r.measured:.4g}",
         f"{r.absolute_error:.4g}"]
        for name, r in reports.items()
    ]
    print(format_table(["quantity", "predicted", "measured", "abs error"],
                       rows))

    for name, report in reports.items():
        if "hit rate" in name:
            assert report.within(0.08), (name, report)
        if "working set" in name:
            # The Section VI-D bound must dominate the live working set.
            assert report.measured <= report.predicted, (name, report)

"""Section VI-E — further sensitivity studies (results omitted in the paper).

The paper reports testing ScratchPipe under different cache replacement
policies (LRU default, LFU, random) and batch sizes, confirming robustness
but omitting the numbers for brevity.  This benchmark regenerates them.
"""

from conftest import run_once
from repro.analysis.experiments import (
    batch_size_sensitivity,
    effective_warmup,
    replacement_policy_sensitivity,
)
from repro.analysis.report import banner, format_table


def test_replacement_policy_sensitivity(benchmark, setup):
    out = run_once(benchmark, lambda: replacement_policy_sensitivity(setup))

    print(banner("Section VI-E: replacement-policy sensitivity (mean_latency "
                 f"ms/iter, warmup={effective_warmup(setup.num_batches)})"))
    rows = [
        [locality] + [f"{results[p] * 1e3:.2f}" for p in ("lru", "lfu", "random")]
        for locality, results in out.items()
    ]
    print(format_table(["locality", "lru", "lfu", "random"], rows))

    for locality, results in out.items():
        times = list(results.values())
        # Robustness: no policy changes the picture by more than ~40%.
        assert max(times) < 1.4 * min(times), locality


def test_batch_size_sensitivity(benchmark, setup):
    # Batch 4096 doubles the sliding window's working set; 6% cache keeps
    # the Section VI-D capacity bound satisfied for every batch size (the
    # paper's study range is 2-10%).
    points = run_once(
        benchmark,
        lambda: batch_size_sensitivity(
            batch_sizes=(512, 2048, 4096), cache_fraction=0.06, base=setup,
        ),
    )

    print(banner("Section VI-E: batch-size sensitivity"))
    rows = [
        [p.locality, f"{p.static_s * 1e3:.1f}", f"{p.scratchpipe_s * 1e3:.1f}",
         f"{p.speedups()['scratchpipe']:.2f}"]
        for p in points
    ]
    print(format_table(
        ["locality/batch", "static ms", "scratchpipe ms", "speedup"], rows
    ))

    # ScratchPipe keeps winning across batch sizes (paper: "confirmed
    # robustness across larger or smaller batch sizes").
    for p in points:
        assert p.speedups()["scratchpipe"] > 1.2, p.locality


def test_mlp_intensity_sensitivity(benchmark, setup):
    from repro.analysis.experiments import mlp_intensity_sensitivity

    points = run_once(
        benchmark,
        lambda: mlp_intensity_sensitivity(
            width_multipliers=(1, 2, 4), base=setup,
        ),
    )

    print(banner("Section VI-E: MLP-intensity sensitivity"))
    rows = [
        [p.locality, f"{p.static_s * 1e3:.1f}", f"{p.scratchpipe_s * 1e3:.1f}",
         f"{p.speedups()['scratchpipe']:.2f}"]
        for p in points
    ]
    print(format_table(
        ["locality/mlp", "static ms", "scratchpipe ms", "speedup"], rows
    ))

    # As the dense network grows, the embedding bottleneck matters less:
    # ScratchPipe's advantage shrinks but never inverts (the paper's
    # robustness claim for MLP-intensive models).
    by_key = {p.locality: p.speedups()["scratchpipe"] for p in points}
    assert by_key["medium/mlp_x4"] < by_key["medium/mlp_x1"]
    assert all(v > 1.0 for v in by_key.values())

"""Ablation — heterogeneous per-table locality (the production case).

The paper's benchmark traces give every table the same locality class, but
its own Figure 6(d) shows production models mix extremely hot and extremely
cold tables.  This ablation runs ScratchPipe over such a mixed trace and
shows the per-table miss traffic (hence the Collect/Exchange/Insert load)
concentrates on the cold tables — the cache "spends" its capacity where the
workload needs it, with no per-table tuning.
"""

import numpy as np

from conftest import run_once
from repro.analysis.report import banner, format_table
from repro.data.distributions import UniformDistribution, ZipfDistribution
from repro.data.trace import MaterialisedDataset, SyntheticDataset
from repro.model.config import ModelConfig
from repro.systems.scratchpipe_system import ScratchPipeSystem

#: Per-table exponents: two hot (Criteo-like), one medium, one cold.
TABLE_EXPONENTS = (0.95, 0.90, 0.65, None)  # None = uniform
WARMUP = 8


def test_heterogeneous_tables(benchmark, setup):
    config = ModelConfig(
        num_tables=len(TABLE_EXPONENTS),
        rows_per_table=setup.config.rows_per_table,
        embedding_dim=setup.config.embedding_dim,
        lookups_per_table=setup.config.lookups_per_table,
        batch_size=setup.config.batch_size,
    )
    distributions = tuple(
        UniformDistribution(config.rows_per_table) if s is None
        else ZipfDistribution(config.rows_per_table, s)
        for s in TABLE_EXPONENTS
    )

    def experiment():
        dataset = MaterialisedDataset(SyntheticDataset(
            config=config,
            distributions=distributions,
            seed=1,
            num_batches=setup.num_batches,
        ))
        system = ScratchPipeSystem(config, setup.hardware, 0.02)
        stats = system.simulate_cache(dataset)
        per_table = np.array([s.per_table_misses for s in stats[WARMUP:]])
        return per_table.mean(axis=0)

    mean_misses = run_once(benchmark, experiment)

    print(banner("Ablation: heterogeneous per-table locality (misses/batch)"))
    rows = [
        [f"table {t}",
         "uniform" if s is None else f"zipf s={s}",
         f"{mean_misses[t]:.0f}"]
        for t, s in enumerate(TABLE_EXPONENTS)
    ]
    print(format_table(["table", "distribution", "mean misses/batch"], rows))

    # Miss traffic concentrates on the colder tables, monotonically.
    assert mean_misses[0] < mean_misses[2] < mean_misses[3]
    assert mean_misses[3] > 3 * mean_misses[0]

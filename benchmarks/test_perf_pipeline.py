"""Persistent pipeline perf harness: planning + cache-management throughput.

Times the full ScratchPipe pipeline (Plan + Hit-Map + hold-mask +
replacement + hazard monitoring) and records batches/sec into
``BENCH_pipeline.json`` at the repo root, so successive PRs accumulate a
throughput trajectory instead of losing their measurements.

Measured per PR:

* metadata-only throughput at the three historical scales (the
  ``acceptance`` scale — 200 batches / 8 tables / 100k slots — is the
  trajectory's headline number);
* a *select-flatness* pair: the identical workload run against 100k and 1M
  scratchpad slots.  Victim selection is O(misses) per cycle, so the cost
  must stay near-flat as the slot count grows 10x — the seed's full-scan
  policies degrade linearly instead;
* a functional-mode (with-storage) scale exercising the [Collect]/[Insert]
  data movement through the preallocated staging rings;
* the retained seed path (legacy dict hazard monitor, per-cycle
  ``np.unique``, full-scan victim selection) at the acceptance scale, and
  the speedup over both it and the previous PR's recorded entry;
* a ``pipelined`` lane: the acceptance scale run through the
  ``overlapped`` stage executor, recording what the cross-process
  Plan-ahead handoff costs (single-core boxes) or buys (multi-core).

``REPRO_SKIP_PERF_ASSERT=1`` records the trajectory without asserting the
speedup/flatness thresholds (for shared or overloaded boxes).
"""

import json
import os
import platform
import sys
import time
from pathlib import Path

import numpy as np

from repro.api import CacheSpec, PipelineSpec, SystemSpec, build_system
from repro.core.pipeline import HazardMonitor, ScratchPipePipeline
from repro.data.trace import MaterialisedDataset, make_dataset
from repro.hardware.spec import DEFAULT_HARDWARE
from repro.model.config import ModelConfig
from repro.systems.scratchpipe_system import make_scratchpads

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_PATH = REPO_ROOT / "BENCH_pipeline.json"

#: Entries are keyed by label so re-runs update in place and each PR's
#: perf pass appends one trajectory point.  PR 10 introduces the pluggable
#: stage-executor backends and reworks the Hit-Map TLB, the RAW-4
#: bookkeeping and the victim-selection walk; alongside the serial lanes
#: it records a ``pipelined`` lane (the ``overlapped`` executor at the
#: acceptance scale) so the cross-process backend's overhead/benefit is
#: part of the trajectory.
RUN_LABEL = "pr10-overlapped-pipeline"
PREVIOUS_LABEL = "pr8-live-serve"

#: Metadata-only pipeline scales: (tables, rows/table, batch, lookups,
#: trace length, scratchpad slots).
SCALES = {
    "small": dict(
        num_tables=2, rows=100_000, batch=256, lookups=8,
        batches=100, slots=20_000,
    ),
    "medium": dict(
        num_tables=4, rows=500_000, batch=512, lookups=16,
        batches=150, slots=60_000,
    ),
    # The acceptance-criterion scale: 200 batches, 8 tables, 100k slots.
    "acceptance": dict(
        num_tables=8, rows=1_000_000, batch=512, lookups=20,
        batches=200, slots=100_000,
    ),
    # Select-flatness pair: same workload, 10x the slots.  O(misses)
    # selection keeps the cost near-flat; O(num_slots) scans do not.
    "flat_100k": dict(
        num_tables=8, rows=2_000_000, batch=512, lookups=20,
        batches=200, slots=100_000,
    ),
    "flat_1m": dict(
        num_tables=8, rows=2_000_000, batch=512, lookups=20,
        batches=200, slots=1_000_000,
    ),
}

#: Functional (with-storage) scale: misses move real rows through the
#: staging rings at [Collect]/[Insert].
FUNCTIONAL_SCALE = dict(
    num_tables=4, rows=200_000, batch=256, lookups=8,
    batches=150, slots=50_000, dim=32,
)

#: Hard gate, measured live against the retained seed path in the same
#: process — machine-independent.  PR 1's code measures ~10x on this
#: comparison and PR 2's 24-28x, so 12x separates the two with margin in
#: both directions while staying robust to wall-clock noise.
MIN_ACCEPTANCE_SPEEDUP = 12.0
#: Advisory only (recorded + printed, asserted solely under
#: ``REPRO_STRICT_PERF=1``): the previous entry's batches/sec was recorded
#: on that PR's box, so the ratio is only meaningful when this run uses
#: comparable hardware.  1.0 is a no-regression gate against the PR 8
#: entry; PR 10 measures ~1.1-1.2x on the same box.
MIN_SPEEDUP_VS_PREVIOUS = 1.0
MAX_FLATNESS_RATIO = 2.0


def _config(scale: dict) -> ModelConfig:
    return ModelConfig(
        num_tables=scale["num_tables"],
        rows_per_table=scale["rows"],
        embedding_dim=scale.get("dim", 32),
        lookups_per_table=scale["lookups"],
        batch_size=scale["batch"],
        bottom_mlp=(64, scale.get("dim", 32)),
        top_mlp=(64, 1),
    )


def _trace(cfg: ModelConfig, scale: dict) -> MaterialisedDataset:
    return MaterialisedDataset(
        make_dataset(cfg, "medium", seed=0, num_batches=scale["batches"])
    )


def _time_fast_path(
    scale: dict,
    trace: MaterialisedDataset = None,
    executor: str = "serial",
) -> float:
    """Seconds for one monitored metadata-only run on the current code."""
    cfg = _config(scale)
    if trace is None:
        trace = _trace(cfg, scale)
    system = build_system(
        SystemSpec(
            system="scratchpipe",
            cache=CacheSpec(fraction=scale["slots"] / scale["rows"]),
            pipeline=PipelineSpec(executor=executor),
        ),
        cfg, DEFAULT_HARDWARE,
    )
    assert system.num_slots == scale["slots"]
    start = time.perf_counter()
    stats = system.simulate_cache(trace, monitor=HazardMonitor(strict=True))
    elapsed = time.perf_counter() - start
    assert len(stats) == scale["batches"]
    return elapsed


def _time_seed_path(scale: dict) -> float:
    """Seconds for the seed-equivalent run: legacy dict monitor, per-cycle
    ``np.unique`` and full-scan victim selection (the paths PRs 1-2
    replaced, all retained behind their ``legacy`` switches)."""
    cfg = _config(scale)
    trace = _trace(cfg, scale)
    pipeline = ScratchPipePipeline(
        config=cfg,
        scratchpads=make_scratchpads(cfg, scale["slots"], legacy_select=True),
        dataset_batches=trace,
        monitor=HazardMonitor(strict=True, legacy=True),
        unique_cache=False,
    )
    start = time.perf_counter()
    result = pipeline.run()
    elapsed = time.perf_counter() - start
    assert len(result.cache_stats) == scale["batches"]
    return elapsed


def _time_functional(scale: dict) -> float:
    """Seconds for a functional (with-storage) run: [Collect] gathers CPU
    rows and victim rows into the staging rings, [Insert] lands them."""
    cfg = _config(scale)
    trace = _trace(cfg, scale)
    rng = np.random.default_rng(0)
    cpu_tables = [
        rng.standard_normal((cfg.rows_per_table, cfg.embedding_dim)).astype(
            np.float32
        )
        for _ in range(cfg.num_tables)
    ]
    pipeline = ScratchPipePipeline(
        config=cfg,
        scratchpads=make_scratchpads(cfg, scale["slots"], with_storage=True),
        dataset_batches=trace,
        cpu_tables=cpu_tables,
    )
    start = time.perf_counter()
    result = pipeline.run()
    elapsed = time.perf_counter() - start
    assert len(result.cache_stats) == scale["batches"]
    return elapsed


def _previous_acceptance_bps(data: dict) -> float:
    """batches/sec of the previous entry's acceptance scale (0.0 if absent)."""
    for run in data.get("runs", []):
        if run.get("label") == PREVIOUS_LABEL:
            return float(
                run["throughput"]["acceptance"]["batches_per_sec"]
            )
    return 0.0


def _load() -> dict:
    if BENCH_PATH.exists():
        return json.loads(BENCH_PATH.read_text())
    return {
        "benchmark": "metadata_pipeline_throughput",
        "unit": "batches_per_sec",
        "scales": {},
        "runs": [],
    }


def _record(data: dict, entry: dict) -> None:
    data["scales"] = {
        name: dict(scale) for name, scale in SCALES.items()
    }
    data["scales"]["functional"] = dict(FUNCTIONAL_SCALE)
    runs = [r for r in data["runs"] if r.get("label") != entry["label"]]
    runs.append(entry)
    data["runs"] = runs
    BENCH_PATH.write_text(json.dumps(data, indent=2) + "\n")


def test_perf_pipeline_throughput_and_speedup():
    throughput = {}
    flat_cfg = _config(SCALES["flat_100k"])
    flat_trace = _trace(flat_cfg, SCALES["flat_100k"])
    for name, scale in SCALES.items():
        trace = flat_trace if name.startswith("flat_") else None
        seconds = _time_fast_path(scale, trace)
        throughput[name] = {
            "seconds": round(seconds, 4),
            "batches_per_sec": round(scale["batches"] / seconds, 2),
        }
    del flat_trace

    functional_seconds = _time_functional(FUNCTIONAL_SCALE)
    throughput["functional"] = {
        "seconds": round(functional_seconds, 4),
        "batches_per_sec": round(
            FUNCTIONAL_SCALE["batches"] / functional_seconds, 2
        ),
    }

    acceptance = SCALES["acceptance"]
    seed_seconds = _time_seed_path(acceptance)
    # Best-of-3 on the fast side: the speedup assertion should not fail
    # because another process stole the box during one pass.
    fast_seconds = min(
        throughput["acceptance"]["seconds"],
        _time_fast_path(acceptance),
        _time_fast_path(acceptance),
    )
    throughput["acceptance"] = {
        "seconds": round(fast_seconds, 4),
        "batches_per_sec": round(acceptance["batches"] / fast_seconds, 2),
    }
    speedup = seed_seconds / fast_seconds

    # The PR 10 ``pipelined`` lane: the same monitored acceptance run
    # through the ``overlapped`` executor.  On a single-core box this
    # records the cross-process handoff's overhead (the planner workers
    # share the core with the parent); with real parallelism it records
    # the overlap benefit.  Either way it is the trajectory's honest
    # number, not a marketing one.
    pipelined_seconds = _time_fast_path(acceptance, executor="overlapped")
    throughput["pipelined"] = {
        "seconds": round(pipelined_seconds, 4),
        "batches_per_sec": round(
            acceptance["batches"] / pipelined_seconds, 2
        ),
        "executor": "overlapped",
    }

    # Near-flat select cost vs slot count (best-of-2 on the 1M side, same
    # wall-clock noise argument).
    flatness = min(
        throughput["flat_1m"]["seconds"],
        _time_fast_path(SCALES["flat_1m"]),
    ) / throughput["flat_100k"]["seconds"]

    data = _load()
    previous_bps = _previous_acceptance_bps(data)
    new_bps = acceptance["batches"] / fast_seconds
    speedup_vs_previous = (
        new_bps / previous_bps if previous_bps else float("nan")
    )

    _record(data, {
        "label": RUN_LABEL,
        "throughput": throughput,
        "seed_path_acceptance": {
            "seconds": round(seed_seconds, 4),
            "batches_per_sec": round(acceptance["batches"] / seed_seconds, 2),
        },
        "speedup_vs_seed_path": round(speedup, 2),
        "speedup_vs_previous": {
            "label": PREVIOUS_LABEL,
            "ratio": round(speedup_vs_previous, 2),
        },
        "select_flatness_1m_over_100k": round(flatness, 3),
        "python": platform.python_version(),
        "numpy": np.__version__,
    })

    print(f"\npipeline throughput: {throughput}")
    print(f"seed-path acceptance run: {seed_seconds:.2f}s; "
          f"speedup {speedup:.1f}x (required >= {MIN_ACCEPTANCE_SPEEDUP}x)")
    print(f"speedup vs {PREVIOUS_LABEL} entry: {speedup_vs_previous:.2f}x "
          f"(advisory; cross-run, >= {MIN_SPEEDUP_VS_PREVIOUS}x expected on "
          "comparable hardware)")
    print(f"select flatness (1M slots / 100k slots): {flatness:.2f}x "
          f"(required <= {MAX_FLATNESS_RATIO}x)")
    if os.environ.get("REPRO_SKIP_PERF_ASSERT"):
        # Shared/overloaded boxes can still record their trajectory point
        # without turning wall-clock noise into a red suite.
        return
    assert speedup >= MIN_ACCEPTANCE_SPEEDUP, (
        f"pipeline is only {speedup:.2f}x faster than the seed path at the "
        f"acceptance scale (need >= {MIN_ACCEPTANCE_SPEEDUP}x)"
    )
    if previous_bps and os.environ.get("REPRO_STRICT_PERF"):
        assert speedup_vs_previous >= MIN_SPEEDUP_VS_PREVIOUS, (
            f"acceptance throughput is only {speedup_vs_previous:.2f}x "
            f"the {PREVIOUS_LABEL} entry's recorded {previous_bps} "
            f"batches/sec (need >= {MIN_SPEEDUP_VS_PREVIOUS}x)"
        )
    assert flatness <= MAX_FLATNESS_RATIO, (
        f"victim selection cost grew {flatness:.2f}x going from 100k to 1M "
        f"slots (need <= {MAX_FLATNESS_RATIO}x; it should be O(misses), "
        "not O(num_slots))"
    )


if __name__ == "__main__":
    sys.exit(test_perf_pipeline_throughput_and_speedup())

"""Persistent pipeline perf harness: metadata-only planning throughput.

Times the full metadata-only ScratchPipe pipeline (Plan + Hit-Map +
hold-mask + replacement + hazard monitoring) at three scales and records
batches/sec into ``BENCH_pipeline.json`` at the repo root, so successive
PRs accumulate a throughput trajectory instead of losing their
measurements.

At the ``acceptance`` scale (200 batches, 8 tables, 100k slots) the run is
also compared against the retained seed path — the legacy dict-based
:class:`HazardMonitor` plus per-cycle ``np.unique`` recomputation
(``unique_cache=False``) — and asserts the vectorised hot loops are at
least 5x faster.
"""

import json
import os
import platform
import sys
import time
from pathlib import Path

import numpy as np

from repro.core.pipeline import HazardMonitor, ScratchPipePipeline
from repro.data.trace import MaterialisedDataset, make_dataset
from repro.hardware.spec import DEFAULT_HARDWARE
from repro.model.config import ModelConfig
from repro.systems.scratchpipe_system import ScratchPipeSystem, make_scratchpads

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_PATH = REPO_ROOT / "BENCH_pipeline.json"

#: Entries are keyed by label so re-runs update in place and each PR's
#: perf pass appends one trajectory point.
RUN_LABEL = "pr1-vectorised-hot-loops"

#: Metadata-only pipeline scales: (tables, rows/table, batch, lookups,
#: trace length, scratchpad slots).
SCALES = {
    "small": dict(
        num_tables=2, rows=100_000, batch=256, lookups=8,
        batches=100, slots=20_000,
    ),
    "medium": dict(
        num_tables=4, rows=500_000, batch=512, lookups=16,
        batches=150, slots=60_000,
    ),
    # The acceptance-criterion scale: 200 batches, 8 tables, 100k slots.
    "acceptance": dict(
        num_tables=8, rows=1_000_000, batch=512, lookups=20,
        batches=200, slots=100_000,
    ),
}

MIN_ACCEPTANCE_SPEEDUP = 5.0


def _config(scale: dict) -> ModelConfig:
    return ModelConfig(
        num_tables=scale["num_tables"],
        rows_per_table=scale["rows"],
        embedding_dim=32,
        lookups_per_table=scale["lookups"],
        batch_size=scale["batch"],
        bottom_mlp=(64, 32),
        top_mlp=(64, 1),
    )


def _trace(cfg: ModelConfig, scale: dict) -> MaterialisedDataset:
    return MaterialisedDataset(
        make_dataset(cfg, "medium", seed=0, num_batches=scale["batches"])
    )


def _time_fast_path(scale: dict) -> float:
    """Seconds for one monitored metadata-only run on the current code."""
    cfg = _config(scale)
    trace = _trace(cfg, scale)
    system = ScratchPipeSystem(
        cfg, DEFAULT_HARDWARE, cache_fraction=scale["slots"] / scale["rows"]
    )
    assert system.num_slots == scale["slots"]
    start = time.perf_counter()
    stats = system.simulate_cache(trace, monitor=HazardMonitor(strict=True))
    elapsed = time.perf_counter() - start
    assert len(stats) == scale["batches"]
    return elapsed


def _time_seed_path(scale: dict) -> float:
    """Seconds for the seed-equivalent run: legacy monitor + per-cycle
    ``np.unique`` (the implementation this PR replaced)."""
    cfg = _config(scale)
    trace = _trace(cfg, scale)
    pipeline = ScratchPipePipeline(
        config=cfg,
        scratchpads=make_scratchpads(cfg, scale["slots"]),
        dataset_batches=trace,
        monitor=HazardMonitor(strict=True, legacy=True),
        unique_cache=False,
    )
    start = time.perf_counter()
    result = pipeline.run()
    elapsed = time.perf_counter() - start
    assert len(result.cache_stats) == scale["batches"]
    return elapsed


def _record(entry: dict) -> None:
    if BENCH_PATH.exists():
        data = json.loads(BENCH_PATH.read_text())
    else:
        data = {
            "benchmark": "metadata_pipeline_throughput",
            "unit": "batches_per_sec",
            "scales": {
                name: {k: v for k, v in scale.items()}
                for name, scale in SCALES.items()
            },
            "runs": [],
        }
    runs = [r for r in data["runs"] if r.get("label") != entry["label"]]
    runs.append(entry)
    data["runs"] = runs
    BENCH_PATH.write_text(json.dumps(data, indent=2) + "\n")


def test_perf_pipeline_throughput_and_speedup():
    throughput = {}
    for name, scale in SCALES.items():
        seconds = _time_fast_path(scale)
        throughput[name] = {
            "seconds": round(seconds, 4),
            "batches_per_sec": round(scale["batches"] / seconds, 2),
        }

    acceptance = SCALES["acceptance"]
    seed_seconds = _time_seed_path(acceptance)
    # Best-of-2 on the fast side: the speedup assertion should not fail
    # because another process stole the box during the first pass.
    fast_seconds = min(
        throughput["acceptance"]["seconds"], _time_fast_path(acceptance)
    )
    speedup = seed_seconds / fast_seconds

    _record({
        "label": RUN_LABEL,
        "throughput": throughput,
        "seed_path_acceptance": {
            "seconds": round(seed_seconds, 4),
            "batches_per_sec": round(acceptance["batches"] / seed_seconds, 2),
        },
        "speedup_vs_seed_path": round(speedup, 2),
        "python": platform.python_version(),
        "numpy": np.__version__,
    })

    print(f"\npipeline throughput: {throughput}")
    print(f"seed-path acceptance run: {seed_seconds:.2f}s; "
          f"speedup {speedup:.1f}x (required >= {MIN_ACCEPTANCE_SPEEDUP}x)")
    if os.environ.get("REPRO_SKIP_PERF_ASSERT"):
        # Shared/overloaded boxes can still record their trajectory point
        # without turning wall-clock noise into a red suite.
        return
    assert speedup >= MIN_ACCEPTANCE_SPEEDUP, (
        f"vectorised pipeline is only {speedup:.2f}x faster than the seed "
        f"path at the acceptance scale (need >= {MIN_ACCEPTANCE_SPEEDUP}x)"
    )


if __name__ == "__main__":
    sys.exit(test_perf_pipeline_throughput_and_speedup())

"""Figure 13 — end-to-end speedup of all four designs (vs static cache).

The paper's headline result: ScratchPipe achieves an average 2.8x (max
4.2x) speedup over the static GPU embedding cache, with the margin
narrowing as dataset locality grows — yet still 1.6-1.9x on high-locality
traces.  The straw-man lands between the static cache and ScratchPipe.
"""

import numpy as np

from conftest import run_once
from repro.analysis.experiments import effective_warmup, fig13_speedup
from repro.analysis.report import banner, format_table


def test_fig13_speedup(benchmark, setup):
    points = run_once(benchmark, lambda: fig13_speedup(setup))

    print(banner("Figure 13: speedup normalised to static cache "
                 f"(mean_latency, warmup={effective_warmup(setup.num_batches)})"))
    rows = []
    for p in points:
        s = p.speedups()
        rows.append([
            p.locality, f"{p.cache_fraction:.0%}",
            f"{s['hybrid']:.2f}", "1.00",
            f"{s['strawman']:.2f}", f"{s['scratchpipe']:.2f}",
            f"{p.scratchpipe_s * 1e3:.1f}ms",
        ])
    print(format_table(
        ["locality", "cache", "hybrid", "static", "strawman", "scratchpipe",
         "SP mean_latency"],
        rows,
    ))

    sp = {(p.locality, p.cache_fraction): p.speedups() for p in points}

    # ScratchPipe beats every other design at every point.
    for key, speedups in sp.items():
        assert speedups["scratchpipe"] > speedups["strawman"], key
        assert speedups["strawman"] > speedups["hybrid"], key
        assert speedups["scratchpipe"] > 1.3, key

    # Paper magnitudes: max ~4.2x; high-locality still >= ~1.6x; average
    # in the low single digits.
    all_sp = [s["scratchpipe"] for s in sp.values()]
    assert 3.0 < max(all_sp) < 6.5
    assert np.mean(all_sp) > 2.0
    high_sp = [s["scratchpipe"] for (loc, f), s in sp.items() if loc == "high"]
    assert min(high_sp) > 1.4

    # Speedup declines with locality (random > low > high) at 2% cache.
    at_2 = {loc: sp[(loc, 0.02)]["scratchpipe"]
            for loc in ("random", "low", "medium", "high")}
    assert at_2["random"] > at_2["medium"] > at_2["high"]

"""TSV ingest throughput: vectorised bulk hashing vs the per-token loop.

Parses the deterministic Criteo-style sample fixture through both
``TsvTraceSource`` engines and records lines/sec and tokens/sec into
``BENCH_pipeline.json`` (entry ``pr5-tsv-ingest``), alongside the
compiled-format replay rate.  The acceptance gate is a >=20x speedup of
the numpy engine over the per-token reference loop — the factor that
makes paper-scale Criteo ingestion usable (the reference loop needs
hours for a day of the Kaggle set; the bulk hasher, minutes).

``REPRO_SKIP_PERF_ASSERT=1`` records without asserting (noisy boxes).
"""

import json
import os
import platform
import sys
import time
import zlib
from pathlib import Path

import numpy as np

from repro.data.fetch import SAMPLE_FIXTURE_PATH, SAMPLE_GEOMETRY
from repro.data.io import CompiledTraceSource, compile_trace
from repro.data.trace import mix64_scalar
from repro.data.tsv import TsvTraceSource
from repro.model.config import ModelConfig

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_PATH = REPO_ROOT / "BENCH_pipeline.json"

RUN_LABEL = "pr5-tsv-ingest"

#: Acceptance gate: bulk hashing must beat the per-token loop by this
#: factor on the sample fixture.
MIN_PARSE_SPEEDUP = 20.0


def _config() -> ModelConfig:
    return ModelConfig().scaled(**SAMPLE_GEOMETRY)


def _time_engine(engine: str, repeats: int = 1) -> tuple:
    """(seconds, lines, tokens) for full forward parses of the fixture."""
    config = _config()
    best = float("inf")
    source = None
    for _ in range(repeats):
        source = TsvTraceSource(SAMPLE_FIXTURE_PATH, config, engine=engine)
        start = time.perf_counter()
        batches = 0
        for chunk in source.iter_chunks():
            batches += len(chunk)
        best = min(best, time.perf_counter() - start)
    lines = batches * config.batch_size
    tokens = lines * config.num_tables * config.lookups_per_table
    return best, lines, tokens


def _time_legacy_crc32_loop() -> float:
    """Seconds for the pre-PR parse loop, reproduced faithfully.

    The original ``TsvTraceSource`` read text lines one at a time, split
    each, and hashed every categorical token with
    ``crc32(f"{table}\\x1f{token}") -> mix64 -> % rows`` in Python.  The
    hash function changed with the vectorised engine, so this replica is
    a *throughput* baseline (the recorded ``speedup_vs_legacy``), not a
    bit-equivalence oracle — that role belongs to ``engine="python"``.
    """
    config = _config()
    columns = config.num_tables * config.lookups_per_table
    rows = config.rows_per_table
    start = time.perf_counter()
    with open(SAMPLE_FIXTURE_PATH, "r", encoding="utf-8") as fh:
        for line in fh:
            if not line.strip():
                continue
            fields = line.rstrip("\n").split("\t")
            cats = fields[1 + 13:]
            for column in range(columns):
                table = column // config.lookups_per_table
                raw = zlib.crc32(f"{table}\x1f{cats[column]}".encode("utf-8"))
                mix64_scalar(raw, 0x75) % rows
    return time.perf_counter() - start


def _time_compiled_replay(tmp_dir: Path) -> tuple:
    """(seconds, batches) for a full replay of the compiled fixture."""
    config = _config()
    source = TsvTraceSource(SAMPLE_FIXTURE_PATH, config)
    path = compile_trace(source, tmp_dir / "criteo_sample.rtrc")
    compiled = CompiledTraceSource(path, config=config)
    start = time.perf_counter()
    batches = 0
    for chunk in compiled.iter_chunks():
        batches += len(chunk)
    return time.perf_counter() - start, batches


def _load() -> dict:
    if BENCH_PATH.exists():
        return json.loads(BENCH_PATH.read_text())
    return {
        "benchmark": "metadata_pipeline_throughput",
        "unit": "batches_per_sec",
        "scales": {},
        "runs": [],
    }


def _record(entry: dict) -> None:
    data = _load()
    runs = [r for r in data.get("runs", []) if r.get("label") != entry["label"]]
    runs.append(entry)
    data["runs"] = runs
    BENCH_PATH.write_text(json.dumps(data, indent=2) + "\n")


def test_perf_tsv_ingest_speedup(tmp_path):
    # Best-of-2 on the fast side so another process stealing the box for
    # one pass cannot flip the assertion.
    vector_seconds, lines, tokens = _time_engine("numpy", repeats=3)
    scalar_seconds, _, _ = _time_engine("python")
    legacy_seconds = _time_legacy_crc32_loop()
    speedup = scalar_seconds / vector_seconds
    speedup_vs_legacy = legacy_seconds / vector_seconds

    replay_seconds, replay_batches = _time_compiled_replay(tmp_path)

    entry = {
        "label": RUN_LABEL,
        "tsv_parse": {
            "fixture_lines": lines,
            "fixture_tokens": tokens,
            "scalar_seconds": round(scalar_seconds, 4),
            "scalar_lines_per_sec": round(lines / scalar_seconds, 1),
            "legacy_crc32_seconds": round(legacy_seconds, 4),
            "legacy_crc32_lines_per_sec": round(lines / legacy_seconds, 1),
            "vector_seconds": round(vector_seconds, 4),
            "vector_lines_per_sec": round(lines / vector_seconds, 1),
            "vector_tokens_per_sec": round(tokens / vector_seconds, 1),
            "speedup": round(speedup, 2),
            "speedup_vs_legacy": round(speedup_vs_legacy, 2),
        },
        "compiled_replay": {
            "seconds": round(replay_seconds, 5),
            "batches_per_sec": round(replay_batches / replay_seconds, 1),
        },
        "python": platform.python_version(),
        "numpy": np.__version__,
    }
    _record(entry)

    print(f"\nTSV parse: scalar {lines / scalar_seconds:.0f} lines/s, "
          f"legacy crc32 {lines / legacy_seconds:.0f} lines/s, "
          f"vector {lines / vector_seconds:.0f} lines/s "
          f"({tokens / vector_seconds:.0f} tokens/s) -> {speedup:.1f}x "
          f"vs per-token loop, {speedup_vs_legacy:.1f}x vs legacy crc32")
    print(f"compiled replay: {replay_batches / replay_seconds:.0f} "
          "batches/s")
    if os.environ.get("REPRO_SKIP_PERF_ASSERT"):
        return
    assert speedup >= MIN_PARSE_SPEEDUP, (
        f"vectorised TSV parse is only {speedup:.1f}x the per-token loop "
        f"(need >= {MIN_PARSE_SPEEDUP}x)"
    )


if __name__ == "__main__":
    sys.exit(test_perf_tsv_ingest_speedup(Path("/tmp")))

"""Figure 12(a) — latency breakdown of baseline and static caches (0-10%).

Regenerates the per-group latency of the no-cache hybrid (the 0% column)
and static caches sized 2-10%, for the four locality classes.
"""

from conftest import run_once
from repro.analysis.experiments import effective_warmup, fig12a_baseline_latency
from repro.analysis.report import banner, format_breakdown


def test_fig12a_baseline_latency(benchmark, setup):
    out = run_once(benchmark, lambda: fig12a_baseline_latency(setup))

    print(banner("Figure 12(a): baseline/static-cache mean_latency breakdown "
                 f"(ms, warmup={effective_warmup(setup.num_batches)})"))
    for locality, designs in out.items():
        for size, groups in designs.items():
            print(format_breakdown(f"{locality:7s} cache={size:4s}", groups))

    for locality, designs in out.items():
        totals = {size: sum(groups.values()) for size, groups in designs.items()}
        # Larger static caches are never slower.
        assert totals["10%"] <= totals["2%"] * 1.02, locality
        assert totals["2%"] <= totals["0%"] * 1.05, locality

    # High-locality traces benefit dramatically; random traces barely move —
    # static caching "fails to overcome the fundamental limitations".
    random_gain = (sum(out["random"]["0%"].values())
                   / sum(out["random"]["10%"].values()))
    high_gain = sum(out["high"]["0%"].values()) / sum(out["high"]["10%"].values())
    assert high_gain > 2.0
    assert random_gain < 1.5

"""Figure 12(b) — ScratchPipe per-stage pipeline latency.

Regenerates the Plan/Collect/Exchange/Insert/Train stage latencies for
cache sizes 2-10% across the four locality classes, and asserts the
paper's reading: CPU interaction is confined to [Collect]/[Insert], whose
cost shrinks as locality grows, leaving embedding training at GPU speed.
"""

from conftest import run_once
from repro.analysis.experiments import (
    effective_warmup,
    fig12b_scratchpipe_latency,
)
from repro.analysis.report import banner, format_breakdown


def test_fig12b_scratchpipe_latency(benchmark, setup):
    out = run_once(benchmark, lambda: fig12b_scratchpipe_latency(setup))

    print(banner("Figure 12(b): ScratchPipe per-stage mean_latency "
                 f"(ms, warmup={effective_warmup(setup.num_batches)})"))
    for locality, sizes in out.items():
        for size, stages in sizes.items():
            print(format_breakdown(f"{locality:7s} cache={size:4s}", stages))

    for locality, sizes in out.items():
        for size, stages in sizes.items():
            assert set(stages) == {"plan", "collect", "exchange", "insert",
                                   "train"}
            # Plan is bookkeeping: always cheap relative to the total.
            assert stages["plan"] < 0.25 * sum(stages.values())

    # CPU-side stage cost (Collect/Insert) falls with locality: higher hit
    # rates mean fewer misses to collect and fewer victims to write back.
    for size in out["random"]:
        assert out["high"][size]["collect"] < out["random"][size]["collect"]
        assert out["high"][size]["insert"] < out["random"][size]["insert"]

    # Stacked totals land in the paper's 0-70 ms plotting range.
    for locality, sizes in out.items():
        for size, stages in sizes.items():
            assert sum(stages.values()) < 0.120, (locality, size)

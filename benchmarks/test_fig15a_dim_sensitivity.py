"""Figure 15(a) — sensitivity to the embedding vector dimension (64-256).

The paper: ScratchPipe's benefit persists across dimensions, with larger
dimensions yielding *larger* speedups because the baseline suffers more
from the increased memory-bandwidth pressure.
"""

import numpy as np

from conftest import run_once
from repro.analysis.experiments import fig15a_dim_sensitivity
from repro.analysis.report import banner, format_table

DIMS = (64, 128, 256)


def test_fig15a_dim_sensitivity(benchmark, setup):
    points = run_once(
        benchmark, lambda: fig15a_dim_sensitivity(dims=DIMS, base=setup)
    )

    print(banner("Figure 15(a): speedup vs embedding dimension"))
    rows = [
        [p.locality, f"{p.speedups()['hybrid']:.2f}", "1.00",
         f"{p.speedups()['strawman']:.2f}",
         f"{p.speedups()['scratchpipe']:.2f}"]
        for p in points
    ]
    print(format_table(
        ["locality/dim", "hybrid", "static", "strawman", "scratchpipe"], rows
    ))

    by_key = {p.locality: p.speedups()["scratchpipe"] for p in points}
    # Benefits intact at every dimension (the paper's core claim).
    assert all(v > 1.5 for v in by_key.values())
    # For the train-bound high-locality trace, larger dimensions shift the
    # bottleneck toward the memory system and the speedup grows strongly —
    # the paper's headline trend.
    assert by_key["high/dim=256"] > by_key["high/dim=128"] > by_key["high/dim=64"]
    # For the already-bandwidth-bound traces both the baseline and
    # ScratchPipe scale with the row size, so the ratio stays in a narrow
    # band (documented deviation: the paper reports a mild further increase
    # that our analytic model attributes to fixed framework overheads in
    # the measured baseline).
    for locality in ("random", "low", "medium"):
        small = by_key[f"{locality}/dim=64"]
        large = by_key[f"{locality}/dim=256"]
        assert abs(large - small) / small < 0.15, locality

"""Figure 14 — energy consumption: static cache vs ScratchPipe.

The paper aggregates CPU socket power (pcm-power) and GPU board power
(nvidia-smi) over the iteration time; ScratchPipe's shorter iterations
translate directly into lower Joules per iteration across all localities.
"""

from conftest import run_once
from repro.analysis.experiments import fig14_energy
from repro.analysis.report import banner, format_table


def test_fig14_energy(benchmark, setup):
    out = run_once(benchmark, lambda: fig14_energy(setup))

    print(banner("Figure 14: energy per iteration (J)"))
    rows = [
        [locality, f"{e['static_cache']:.1f}", f"{e['scratchpipe']:.1f}",
         f"{e['static_cache'] / e['scratchpipe']:.2f}x"]
        for locality, e in out.items()
    ]
    print(format_table(["locality", "static cache", "scratchpipe", "ratio"],
                       rows))

    for locality, energies in out.items():
        # ScratchPipe always consumes less energy per iteration.
        assert energies["scratchpipe"] < energies["static_cache"], locality
        # Figure 14's y-axis runs 0-80 J; both designs land inside it.
        assert energies["static_cache"] < 90, locality
        assert energies["scratchpipe"] > 1, locality

    # The energy gap narrows with locality, mirroring the speedup trend.
    ratio = {
        locality: e["static_cache"] / e["scratchpipe"]
        for locality, e in out.items()
    }
    assert ratio["random"] > ratio["high"]

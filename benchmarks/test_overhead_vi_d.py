"""Section VI-D — implementation overhead of the GPU scratchpad.

Reproduces the paper's capacity arithmetic: the Storage array must cover
the worst-case working set of the six in-flight mini-batches (960 MB under
the default configuration), with the Hit-Map and miscellaneous structures
bringing the total below 4 GB of GPU memory.
"""

from conftest import run_once
from repro.analysis.experiments import overhead_vi_d
from repro.analysis.report import banner, format_table
from repro.core.scratchpad import required_slots
from repro.model.config import ModelConfig


def test_overhead_vi_d(benchmark):
    out = run_once(benchmark, overhead_vi_d)

    print(banner("Section VI-D: GPU scratchpad implementation overhead"))
    print(format_table(
        ["component", "bytes", "MB"],
        [
            [name, f"{int(v)}", f"{v / 1e6:.0f}"]
            for name, v in out.items()
        ],
    ))

    # The paper's exact worst-case expression:
    # (8 tables x 20 gathers x 2048 batch x 128-dim x 4 B) x 6 batches.
    assert out["storage_worst_case_bytes"] == 8 * 20 * 2048 * 128 * 4 * 6
    # "<1 GB" Hit-Map, "<300 MB" miscellaneous, "<4 GB" aggregate.
    assert out["hitmap_bytes"] < 1e9
    assert out["misc_bytes"] <= 300e6
    assert out["total_bytes"] < 4e9


def test_required_slots_fits_default_cache(benchmark):
    """The 2% cache of the default model satisfies the steady-state hold
    bound (~4x the per-batch unique IDs), while the 6-batch worst case
    exceeds it — matching the paper's remark that the *actual* working set
    is far below the provisioned worst case."""
    config = ModelConfig()
    worst = run_once(benchmark, lambda: required_slots(config, window_batches=6))
    cache_slots = int(0.02 * config.rows_per_table)
    per_batch = config.lookups_per_table * config.batch_size
    print(f"\nworst-case slots/table={worst}  2%-cache slots={cache_slots}  "
          f"per-batch lookups={per_batch}")
    assert worst == 6 * per_batch
    assert cache_slots > 4 * per_batch
    assert worst > cache_slots

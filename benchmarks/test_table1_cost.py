"""Table I — training cost of ScratchPipe vs an 8-GPU GPU-only system.

Prices one million training iterations on AWS: ScratchPipe on a $3.06/hr
p3.2xlarge against table-wise model-parallel training on a $24.48/hr
p3.16xlarge.  The paper reports an average 4.0x (max 5.7x) cost saving,
growing with dataset locality.
"""

import numpy as np

from conftest import run_once
from repro.analysis.cost import cost_saving
from repro.analysis.experiments import table1_cost
from repro.analysis.report import banner, format_table


def test_table1_cost(benchmark, setup):
    rows = run_once(benchmark, lambda: table1_cost(setup))

    print(banner("Table I: training cost over 1M iterations"))
    table_rows = []
    for sp, mg in rows:
        table_rows.append(sp.formatted())
        table_rows.append(mg.formatted())
    print(format_table(
        ["Dataset", "System", "AWS Instance", "Price/hr", "Iter. Time",
         "1M Iter. Cost"],
        table_rows,
    ))

    savings = {sp.dataset: cost_saving(sp, mg) for sp, mg in rows}
    print("\ncost savings:",
          {k: f"{v:.2f}x" for k, v in savings.items()})

    for sp, mg in rows:
        # The 8-GPU system is always faster per iteration but always more
        # expensive per converged model.
        assert mg.iteration_time_s < sp.iteration_time_s
        assert sp.cost < mg.cost
        # Iteration times land in the paper's reported ranges.
        assert 0.012 < sp.iteration_time_s < 0.065, sp.dataset
        assert 0.012 < mg.iteration_time_s < 0.026, mg.dataset

    # Savings magnitude and trend: average ~4x, more savings with higher
    # locality (Table I: High saves the most).
    values = list(savings.values())
    assert 2.0 < np.mean(values) < 8.0
    assert savings["High"] > savings["Random"]

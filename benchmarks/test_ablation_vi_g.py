"""Section VI-G ablation — ScratchPipe over multiple GPUs.

The paper argues (without numbers) that extending ScratchPipe to multi-GPU
training is viable but "likely not going to be cost-effective in terms of
TCO reduction", because the DNNs are not the bottleneck and the extra GPUs
sit underutilised.  This ablation quantifies that prediction with the
analytic model: speedup, scaling efficiency and cost ratio of 1/2/4/8-GPU
ScratchPipe.
"""

from conftest import run_once
from repro.analysis.report import banner, format_table
from repro.data.trace import MaterialisedDataset, make_dataset
from repro.systems.multigpu_scratchpipe import (
    MultiGpuScratchPipeSystem,
    tco_comparison,
)
from repro.systems.scratchpipe_system import ScratchPipeSystem

GPU_COUNTS = (1, 2, 4, 8)
WARMUP = 8


def test_ablation_multigpu_scratchpipe(benchmark, setup):
    def experiment():
        # High locality makes ScratchPipe Train-bound — the most favourable
        # case for adding GPUs — and the scaling is *still* poor, which is
        # the paper's argument.
        trace = MaterialisedDataset(
            make_dataset(setup.config, "high", seed=0,
                         num_batches=setup.num_batches)
        )
        single = ScratchPipeSystem(
            setup.config, setup.hardware, 0.02
        ).run_trace(trace).mean_latency(WARMUP)
        multi = {
            g: MultiGpuScratchPipeSystem(
                setup.config, setup.hardware, 0.02, num_gpus=g
            ).run_trace(trace).mean_latency(WARMUP)
            for g in GPU_COUNTS
        }
        return single, multi

    single, multi = run_once(benchmark, experiment)

    print(banner("Section VI-G ablation: multi-GPU ScratchPipe TCO "
                 f"(mean_latency, warmup={WARMUP})"))
    rows = []
    for g in GPU_COUNTS:
        out = tco_comparison(single, multi[g], num_gpus=g)
        rows.append([
            f"{g} GPU", f"{multi[g] * 1e3:.2f}",
            f"{out['speedup']:.2f}x",
            f"{out['scaling_efficiency']:.2f}",
            f"{out['cost_ratio']:.2f}x",
        ])
    print(format_table(
        ["config", "mean_latency ms/iter", "speedup", "scaling eff.",
         "cost vs 1 GPU"],
        rows,
    ))

    # The paper's prediction: viable but not cost-effective.
    eight = tco_comparison(single, multi[8], num_gpus=8)
    assert multi[8] <= multi[1]          # more GPUs never slower
    assert eight["speedup"] < 4.0        # far from linear scaling
    assert eight["cost_ratio"] > 1.5     # strictly worse TCO than 1 GPU

"""Figure 3 — sorted access counts of embedding-table entries.

Regenerates the long-tail access-count curves for the four dataset profiles
(Alibaba, Kaggle Anime, MovieLens, Criteo) and asserts the paper's
characterisation: every dataset is power-law, with Criteo the most and
Alibaba the least concentrated.
"""

import numpy as np

from conftest import run_once
from repro.analysis.experiments import fig3_access_counts
from repro.analysis.report import banner, format_series


def test_fig3_access_counts(benchmark):
    curves = run_once(
        benchmark,
        lambda: fig3_access_counts(
            num_rows=10_000_000, total_accesses=10**8, n_points=1000
        ),
    )

    print(banner("Figure 3: sorted access counts (expected, 100M accesses)"))
    ranks = [0, 9, 99, 999]
    for name, curve in curves.items():
        print(format_series(
            name, [f"rank{r}" for r in ranks], [curve[r] for r in ranks],
            y_format="{:.0f}",
        ))

    # Shape: all curves strictly descending power laws.
    for name, curve in curves.items():
        assert np.all(np.diff(curve) <= 0), name
    # Criteo's head is the most concentrated, Alibaba's the least.
    heads = {name: curve[0] / curve[-1] for name, curve in curves.items()}
    assert heads["Criteo"] > heads["Kaggle Anime"] > heads["Alibaba"]
    assert heads["MovieLens"] > heads["Alibaba"]

"""Figure 6 — static-cache hit rate as a function of cache size.

Regenerates the four hit-rate curves and asserts the properties the paper
reads off them: Criteo saturates with a tiny cache while Alibaba needs the
majority of the table resident to pass 90%.
"""

import numpy as np

from conftest import run_once
from repro.analysis.experiments import fig6_hit_rate
from repro.analysis.report import banner, format_series


def test_fig6_hit_rate(benchmark):
    fractions, curves = run_once(
        benchmark,
        lambda: fig6_hit_rate(cache_fractions=np.linspace(0.01, 1.0, 100)),
    )

    print(banner("Figure 6: static-cache hit rate vs cache size"))
    picks = [1, 9, 24, 49, 99]
    for name, curve in curves.items():
        print(format_series(
            name,
            [f"{fractions[i]:.0%}" for i in picks],
            [curve[i] for i in picks],
            y_format="{:.2f}",
        ))

    for name, curve in curves.items():
        assert np.all(np.diff(curve) >= -1e-12), name
        assert curve[-1] == 1.0

    # Criteo: small caches give most of the benefit; growing the cache adds
    # little (Figure 6(d)).
    criteo = curves["Criteo"]
    assert criteo[1] > 0.8
    assert criteo[49] - criteo[1] < 0.2

    # Alibaba: >90% hit rate needs well over half the table (Figure 6(a)).
    alibaba = curves["Alibaba"]
    first_over_90 = fractions[np.argmax(alibaba >= 0.9)]
    assert first_over_90 > 0.6


def test_fig6d_per_table_curves(benchmark):
    """Figure 6(d): per-table hit-rate curves of the Criteo-like profile."""
    from repro.data.datasets import criteo_table_distributions

    def experiment():
        fractions = np.linspace(0.01, 1.0, 50)
        dists = criteo_table_distributions(10_000_000)
        return fractions, {
            t: np.array([d.hit_rate(f) for f in fractions])
            for t, d in dists.items()
        }

    fractions, curves = run_once(benchmark, experiment)

    print(banner("Figure 6(d): per-table hit rate (Criteo-like profile)"))
    picks = [0, 9, 24, 49]
    for table in sorted(curves):
        print(format_series(
            f"Table {table}",
            [f"{fractions[i]:.0%}" for i in picks],
            [curves[table][i] for i in picks],
            y_format="{:.2f}",
        ))

    # The hottest table saturates with a tiny cache; the coldest needs the
    # majority of its rows resident (the visual spread of Figure 6(d)).
    assert curves[0][0] > 0.8
    assert curves[21][24] < 0.75
    for table, curve in curves.items():
        assert np.all(np.diff(curve) >= -1e-12), table
